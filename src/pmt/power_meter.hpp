/**
 * @file
 * PMT-style unified power-measurement interface (paper Sec. V-A1).
 *
 * The Power Measurement Toolkit exposes one API over many power
 * sources; here we reproduce that layer with two families of
 * backends:
 *
 *  - PowerSensor3Meter: wraps the host library (external sensor);
 *  - vendor-API simulators (vendor_sim.hpp): read the *same* DUT
 *    ground truth but through the update-rate and averaging artifacts
 *    of NVML / ROCm-SMI / AMD-SMI / the Jetson built-in sensor.
 *
 * Because all backends observe one underlying power signal, the
 * Fig. 7 comparisons isolate exactly what the paper isolates: the
 * measurement-path artifacts, not device differences.
 */

#ifndef PS3_PMT_POWER_METER_HPP
#define PS3_PMT_POWER_METER_HPP

#include <string>

#include "host/sensor.hpp"

namespace ps3::pmt {

/** One meter reading. */
struct PmtState
{
    /** Timestamp in the device/virtual time domain (s). */
    double timestamp = 0.0;
    /** Cumulative energy reported by this meter (J). */
    double joules = 0.0;
    /** Power reported by this meter at the timestamp (W). */
    double watts = 0.0;
};

/** Abstract power meter. */
class PowerMeter
{
  public:
    virtual ~PowerMeter() = default;

    /** Take a reading now. */
    virtual PmtState read() = 0;

    /** Human-readable backend name ("PowerSensor3", "NVML", ...). */
    virtual std::string name() const = 0;
};

/** Energy between two readings (J). */
inline double
joules(const PmtState &first, const PmtState &second)
{
    return second.joules - first.joules;
}

/** Time between two readings (s). */
inline double
seconds(const PmtState &first, const PmtState &second)
{
    return second.timestamp - first.timestamp;
}

/** Average power between two readings (W). */
double watts(const PmtState &first, const PmtState &second);

/** PMT backend reading a connected PowerSensor3. */
class PowerSensor3Meter : public PowerMeter
{
  public:
    /** @param sensor Connected sensor; must outlive the meter. */
    explicit PowerSensor3Meter(host::Sensor &sensor);

    PmtState read() override;
    std::string name() const override { return "PowerSensor3"; }

  private:
    host::Sensor &sensor_;
};

} // namespace ps3::pmt

#endif // PS3_PMT_POWER_METER_HPP
