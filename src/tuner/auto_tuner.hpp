/**
 * @file
 * Kernel-Tuner-style auto-tuner measuring energy through either
 * PowerSensor3 or the GPU's on-board sensor (paper Sec. V-A2).
 *
 * The tuner benchmarks every code variant of a search space at every
 * clock in the tuned band. The two measurement strategies reproduce
 * the paper's workflow difference:
 *
 *  - ExternalSensor (PowerSensor3): the kernel's energy is captured
 *    instantly at 20 kHz, so each variant costs only its compile /
 *    setup overhead plus `trials` kernel executions;
 *  - OnboardSensor (NVML-style): the 10 Hz on-board sensor forces the
 *    tuner to re-run the kernel continuously for an extended period
 *    (1-2 s) per variant to collect enough samples.
 *
 * The resulting wall-clock tuning times are accounted per variant and
 * reported; their ratio is the paper's headline 3.25x speed-up.
 *
 * Measurement is real, not modelled: the ExternalSensor strategy
 * schedules every kernel on the GPU DUT and integrates energy from
 * the 20 kHz PowerSensor3 sample stream; the OnboardSensor strategy
 * reads a vendor-API simulator across the extended runs.
 */

#ifndef PS3_TUNER_AUTO_TUNER_HPP
#define PS3_TUNER_AUTO_TUNER_HPP

#include <string>
#include <vector>

#include "firmware/firmware.hpp"
#include "host/sensor.hpp"
#include "pmt/power_meter.hpp"
#include "tuner/beamformer_model.hpp"
#include "tuner/search_space.hpp"
#include "tuner/strategies.hpp"

namespace ps3::tuner {

/** How the tuner obtains per-variant energy. */
enum class MeasurementStrategy { ExternalSensor, OnboardSensor };

/** Tuner knobs. */
struct TuningOptions
{
    MeasurementStrategy strategy = MeasurementStrategy::ExternalSensor;
    /** Benchmark repetitions per variant (paper: 7 trials). */
    unsigned trials = 7;
    /** Compile + setup overhead per variant (s). */
    double perConfigOverheadSeconds = 0.42;
    /** Continuous re-run needed by the on-board sensor (s). */
    double onboardExtendedRunSeconds = 1.0;
    /** Idle gap between scheduled kernels (s, virtual). */
    double interKernelGapSeconds = 0.02;
};

/** Outcome of benchmarking one variant at one clock. */
struct MeasurementRecord
{
    Configuration config;
    double clockMHz = 0.0;
    /** Measured kernel execution time (s). */
    double kernelSeconds = 0.0;
    /** Measured energy of one kernel execution (J). */
    double energyJoules = 0.0;
    /** Average power during execution (W). */
    double avgPowerWatts = 0.0;
    /** Achieved compute rate (TFLOP/s). */
    double tflops = 0.0;
    /** Energy efficiency (TFLOP/J). */
    double tflopPerJoule = 0.0;
    /** This variant's contribution to total tuning time (s). */
    double accountedSeconds = 0.0;
};

/** Full tuning outcome. */
struct TuningResult
{
    std::vector<MeasurementRecord> records;
    /** Total tuning time under the chosen strategy (s). */
    double totalTuningSeconds = 0.0;
    /** Name of the measurement backend used. */
    std::string meterName;
};

/** The auto-tuner. */
class AutoTuner
{
  public:
    /**
     * @param gpu GPU DUT the kernels run on (for a SoC rig, pass
     *        soc->module()).
     * @param fw Firmware owning the virtual clock (and, for the
     *        on-board strategy, the time axis to advance).
     * @param sensor Connected PowerSensor3 (required for the
     *        ExternalSensor strategy; may be null otherwise).
     * @param onboard Vendor-API meter (required for the
     *        OnboardSensor strategy; may be null otherwise).
     * @param model Kernel performance/power model.
     * @param options Tuning knobs.
     */
    AutoTuner(dut::GpuDutModel &gpu, firmware::Firmware &fw,
              host::Sensor *sensor, pmt::PowerMeter *onboard,
              BeamformerModel model, TuningOptions options);

    /**
     * Benchmark every configuration of the space at every clock of
     * the model's tuned band.
     */
    TuningResult tune(const SearchSpace &space);

    /**
     * Drive an adaptive search strategy: measure each proposed batch
     * through the external sensor, feed the objective values back,
     * and stop when the strategy is done. Requires the
     * ExternalSensor strategy (the whole point of combining search
     * strategies with PowerSensor3 is the cheap measurements).
     *
     * @param strategy Proposer (e.g. RandomSearchStrategy).
     * @param objective What the strategy maximises.
     */
    TuningResult tuneAdaptive(SearchStrategy &strategy,
                              Objective objective);

    /**
     * Indices of the Pareto-optimal records (maximising TFLOP/s and
     * TFLOP/J simultaneously), ordered by descending performance.
     */
    static std::vector<std::size_t>
    paretoFront(const std::vector<MeasurementRecord> &records);

  private:
    dut::GpuDutModel &gpu_;
    firmware::Firmware &fw_;
    host::Sensor *sensor_;
    pmt::PowerMeter *onboard_;
    BeamformerModel model_;
    TuningOptions options_;

    TuningResult tuneExternal(const std::vector<Configuration> &configs,
                              const std::vector<double> &clocks);
    TuningResult tuneOnboard(const std::vector<Configuration> &configs,
                             const std::vector<double> &clocks);

    /** Measure one batch of points in a single streaming pass. */
    std::vector<MeasurementRecord>
    measureExternalBatch(const std::vector<TuningPoint> &points);
};

} // namespace ps3::tuner

#endif // PS3_TUNER_AUTO_TUNER_HPP
