/**
 * @file
 * Performance/power model of the Tensor-Core Beamformer (paper
 * Sec. V-A2).
 *
 * The beamformer performs complex matrix multiplication on tensor /
 * matrix cores; with 16-bit data and M = N = K = 4096, one kernel
 * executes 8 * M * N * K real floating-point operations.
 *
 * The model maps a code variant (Configuration) and a locked clock
 * frequency to:
 *
 *  - execution time: work / (peak(f) * efficiency(config)), with a
 *    mild memory-bandwidth saturation at high clocks;
 *  - sustained board power: static + dynamic * (f/fmax)^3 * util,
 *    the cubic DVFS law the paper's energy-tuning reference [22]
 *    uses.
 *
 * Constants are calibrated so the RTX-4000-Ada variant lands near the
 * paper's headline numbers: fastest Pareto point ~80 TFLOP/s at
 * ~0.83 TFLOP/J, with a more efficient configuration ~12% better in
 * TFLOP/J at ~20% lower performance.
 */

#ifndef PS3_TUNER_BEAMFORMER_MODEL_HPP
#define PS3_TUNER_BEAMFORMER_MODEL_HPP

#include "dut/gpu_model.hpp"
#include "tuner/search_space.hpp"

namespace ps3::tuner {

/** Predicted behaviour of one code variant at one clock. */
struct KernelPrediction
{
    /** Kernel execution time (s). */
    double seconds = 0.0;
    /** Sustained board power while executing (W). */
    double watts = 0.0;
    /** Achieved compute rate (TFLOP/s). */
    double tflops = 0.0;
};

/** Beamformer problem size. */
struct BeamformerProblem
{
    unsigned m = 4096;
    unsigned n = 4096;
    unsigned k = 4096;

    /** Total real FLOPs of one kernel execution. */
    double
    flops() const
    {
        return 8.0 * static_cast<double>(m) * n * k;
    }
};

/** Analytic model of the beamformer kernel on a GPU. */
class BeamformerModel
{
  public:
    /**
     * @param gpu GPU constants (clocks, power envelope).
     * @param problem Matrix sizes.
     */
    BeamformerModel(const dut::GpuSpec &gpu,
                    const BeamformerProblem &problem = {});

    /**
     * Predict one execution.
     *
     * @param config Code-variant parameters (beamformerSpace()).
     * @param clock_mhz Locked core clock.
     */
    KernelPrediction predict(const Configuration &config,
                             double clock_mhz) const;

    /**
     * Relative compute efficiency of a variant in (0, 1]; 1.0 is the
     * best variant in the space.
     */
    double efficiency(const Configuration &config) const;

    /**
     * The clock frequencies to tune over: 10 values spanning the
     * energy-relevant band that the performance model of [22]
     * narrows the search to.
     */
    std::vector<double> clockRangeMHz() const;

    const dut::GpuSpec &gpu() const { return gpu_; }
    const BeamformerProblem &problem() const { return problem_; }

  private:
    dut::GpuSpec gpu_;
    BeamformerProblem problem_;

    /** Peak tensor throughput at boost clock (TFLOP/s). */
    double peakTflops_;
    /** Static board power under load (W). */
    double staticWatts_;
    /** Dynamic power at boost clock and full utilisation (W). */
    double dynamicWatts_;
};

} // namespace ps3::tuner

#endif // PS3_TUNER_BEAMFORMER_MODEL_HPP
