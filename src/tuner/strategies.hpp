/**
 * @file
 * Search-space exploration strategies for the auto-tuner.
 *
 * The paper's experiment sweeps all 5120 configurations; Kernel Tuner
 * also ships optimisation strategies that find near-optimal variants
 * from a fraction of the measurements. Because PowerSensor3 makes a
 * single measurement cheap (no extended re-run), strategy search and
 * fast measurement compound — the motivation for supporting both.
 *
 * A strategy is an iterative proposer: it emits a batch of jobs to
 * measure, receives their measured objective values, and proposes the
 * next batch until it is done. The AutoTuner measures each batch in
 * one streaming pass.
 */

#ifndef PS3_TUNER_STRATEGIES_HPP
#define PS3_TUNER_STRATEGIES_HPP

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "tuner/beamformer_model.hpp"
#include "tuner/search_space.hpp"

namespace ps3::tuner {

/** One point of the tuning space: a code variant at a clock. */
struct TuningPoint
{
    Configuration config;
    double clockMHz = 0.0;

    bool operator==(const TuningPoint &) const = default;
};

/** Objective the strategies optimise. */
enum class Objective
{
    /** Maximise TFLOP/s. */
    Performance,
    /** Maximise TFLOP/J. */
    EnergyEfficiency,
};

/** Feedback for one measured point. */
struct MeasuredPoint
{
    TuningPoint point;
    /** Objective value (higher is better). */
    double value = 0.0;
};

/** Iterative search strategy. */
class SearchStrategy
{
  public:
    virtual ~SearchStrategy() = default;

    /**
     * Propose the next batch of points to measure; empty batch means
     * the strategy is finished.
     */
    virtual std::vector<TuningPoint> nextBatch() = 0;

    /** Deliver the measured objective values of the last batch. */
    virtual void observe(const std::vector<MeasuredPoint> &batch) = 0;

    /** Points proposed so far. */
    virtual std::size_t proposedCount() const = 0;
};

/**
 * Uniform random sampling of the space with a fixed budget; a strong
 * baseline for plateau-rich tuning spaces.
 */
class RandomSearchStrategy : public SearchStrategy
{
  public:
    /**
     * @param space Variant space.
     * @param clocks Clock candidates.
     * @param budget Total points to sample.
     * @param batch_size Points per measurement pass.
     * @param seed Sampling seed.
     */
    RandomSearchStrategy(const SearchSpace &space,
                         std::vector<double> clocks,
                         std::size_t budget, std::size_t batch_size,
                         std::uint64_t seed);

    std::vector<TuningPoint> nextBatch() override;
    void observe(const std::vector<MeasuredPoint> &batch) override;
    std::size_t proposedCount() const override { return proposed_; }

  private:
    std::vector<Configuration> configs_;
    std::vector<double> clocks_;
    std::size_t budget_;
    std::size_t batchSize_;
    Rng rng_;
    std::size_t proposed_ = 0;
};

/**
 * Greedy local search (hill climbing) with random restarts: from a
 * random point, evaluate all single-parameter neighbours and move to
 * the best until no neighbour improves, then restart.
 */
class LocalSearchStrategy : public SearchStrategy
{
  public:
    /**
     * @param space Variant space (parameter values define the
     *        neighbourhood structure).
     * @param clocks Clock candidates (treated as one more axis).
     * @param restarts Number of random restarts.
     * @param max_points Hard budget across all restarts.
     * @param seed Restart/tie-break seed.
     */
    LocalSearchStrategy(const SearchSpace &space,
                        std::vector<double> clocks, unsigned restarts,
                        std::size_t max_points, std::uint64_t seed);

    std::vector<TuningPoint> nextBatch() override;
    void observe(const std::vector<MeasuredPoint> &batch) override;
    std::size_t proposedCount() const override { return proposed_; }

  private:
    std::vector<Configuration> configs_;
    std::vector<double> clocks_;
    unsigned restartsLeft_;
    std::size_t maxPoints_;
    Rng rng_;
    std::size_t proposed_ = 0;

    /** Current climb state. */
    bool climbing_ = false;
    TuningPoint current_;
    double currentValue_ = 0.0;
    std::vector<TuningPoint> pendingNeighbours_;

    std::vector<TuningPoint> neighbours(const TuningPoint &p) const;
    TuningPoint randomPoint();
};

} // namespace ps3::tuner

#endif // PS3_TUNER_STRATEGIES_HPP
