#include "beamformer_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/errors.hpp"

namespace ps3::tuner {

namespace {

/** Fraction of tensor peak the best variant achieves. */
constexpr double kBestEfficiency = 0.55;

/** Lowest relative clock in the tuned band (from the [22] model). */
constexpr double kMinRelativeClock = 0.703;

/** Clock count in the tuned band (paper: 10 clock frequencies). */
constexpr unsigned kClockSteps = 10;

double
lookup(int value, std::initializer_list<std::pair<int, double>> table)
{
    for (const auto &[key, factor] : table) {
        if (key == value)
            return factor;
    }
    throw UsageError("BeamformerModel: parameter value outside space");
}

/** Small deterministic per-variant jitter so variants do not tie. */
double
configJitter(const Configuration &config)
{
    std::uint64_t hash = 1469598103934665603ull;
    for (const auto &[name, value] : config) {
        for (char c : name)
            hash = (hash ^ static_cast<std::uint64_t>(c))
                   * 1099511628211ull;
        hash = (hash ^ static_cast<std::uint64_t>(value + 7))
               * 1099511628211ull;
    }
    // Map to [0.97, 1.03).
    return 0.97 + 0.06 * static_cast<double>(hash % 10007) / 10007.0;
}

} // namespace

BeamformerModel::BeamformerModel(const dut::GpuSpec &gpu,
                                 const BeamformerProblem &problem)
    : gpu_(gpu), problem_(problem)
{
    // Tensor peak scales with compute units and clock relative to
    // the calibration card (RTX 4000 Ada: 48 units at 2175 MHz with
    // ~146 TFLOP/s FP16 tensor peak).
    peakTflops_ = 146.0 * (gpu_.computeUnits / 48.0)
                  * (gpu_.boostClockMHz / 2175.0);

    // DVFS power split calibrated so the fastest configuration draws
    // ~75% of the board limit and the energy optimum falls inside
    // the tuned clock band.
    staticWatts_ =
        gpu_.idlePower + 0.22 * (gpu_.powerLimit - gpu_.idlePower);
    dynamicWatts_ = 0.75 * gpu_.powerLimit - staticWatts_;
    if (dynamicWatts_ <= 0.0)
        throw UsageError("BeamformerModel: inconsistent power budget");
}

double
BeamformerModel::efficiency(const Configuration &config) const
{
    const double warps = lookup(config.at("block_warps"),
                                {{2, 0.78}, {4, 1.0}, {8, 0.93},
                                 {16, 0.80}});
    const double block_y = lookup(config.at("block_y"),
                                  {{1, 0.82}, {2, 1.0}, {4, 0.96},
                                   {8, 0.85}});
    const double frags_block = lookup(config.at("frags_per_block"),
                                      {{1, 0.65}, {2, 0.88}, {4, 1.0},
                                       {8, 0.92}});
    const double frags_warp = lookup(config.at("frags_per_warp"),
                                     {{1, 0.72}, {2, 1.0}, {4, 0.96},
                                      {8, 0.78}});
    const double buffering =
        config.at("double_buffer") != 0 ? 1.0 : 0.90;

    double eff =
        warps * block_y * frags_block * frags_warp * buffering;

    // Shared-memory pressure: double buffering with the largest
    // tiles spills and hurts badly.
    if (config.at("double_buffer") != 0
        && config.at("frags_per_block") == 8
        && config.at("block_y") == 8) {
        eff *= 0.5;
    }
    return std::min(eff * configJitter(config), 1.0);
}

KernelPrediction
BeamformerModel::predict(const Configuration &config,
                         double clock_mhz) const
{
    if (clock_mhz <= 0.0 || clock_mhz > gpu_.boostClockMHz * 1.001)
        throw UsageError("BeamformerModel: clock outside range");

    const double f_r = clock_mhz / gpu_.boostClockMHz;
    const double eff = efficiency(config);

    KernelPrediction prediction;
    prediction.tflops = peakTflops_ * kBestEfficiency * eff * f_r;
    prediction.seconds =
        problem_.flops() / (prediction.tflops * 1e12);

    const double utilisation = 0.55 + 0.45 * eff;
    prediction.watts =
        std::min(staticWatts_
                     + dynamicWatts_ * f_r * f_r * f_r * utilisation,
                 gpu_.powerLimit);
    return prediction;
}

std::vector<double>
BeamformerModel::clockRangeMHz() const
{
    std::vector<double> clocks;
    clocks.reserve(kClockSteps);
    const double lo = kMinRelativeClock * gpu_.boostClockMHz;
    const double hi = gpu_.boostClockMHz;
    for (unsigned i = 0; i < kClockSteps; ++i) {
        clocks.push_back(lo
                         + (hi - lo) * static_cast<double>(i)
                               / (kClockSteps - 1));
    }
    return clocks;
}

} // namespace ps3::tuner
