#include "auto_tuner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>

#include "common/errors.hpp"

namespace ps3::tuner {

namespace {

/** Virtual-time margin before the first scheduled kernel (s). */
constexpr double kScheduleMargin = 0.25;

} // namespace

AutoTuner::AutoTuner(dut::GpuDutModel &gpu, firmware::Firmware &fw,
                     host::Sensor *sensor,
                     pmt::PowerMeter *onboard, BeamformerModel model,
                     TuningOptions options)
    : gpu_(gpu), fw_(fw), sensor_(sensor), onboard_(onboard),
      model_(std::move(model)), options_(options)
{
    if (options_.strategy == MeasurementStrategy::ExternalSensor
        && sensor_ == nullptr) {
        throw UsageError("AutoTuner: ExternalSensor needs a sensor");
    }
    if (options_.strategy == MeasurementStrategy::OnboardSensor
        && onboard_ == nullptr) {
        throw UsageError("AutoTuner: OnboardSensor needs a meter");
    }
}

TuningResult
AutoTuner::tune(const SearchSpace &space)
{
    const auto configs = space.enumerate();
    if (configs.empty())
        throw UsageError("AutoTuner: empty search space");
    const auto clocks = model_.clockRangeMHz();

    if (options_.strategy == MeasurementStrategy::ExternalSensor)
        return tuneExternal(configs, clocks);
    return tuneOnboard(configs, clocks);
}

std::vector<MeasurementRecord>
AutoTuner::measureExternalBatch(const std::vector<TuningPoint> &points)
{
    if (points.empty())
        return {};

    // Freeze sample production while the program is being built so
    // the schedule start is deterministic.
    const double freeze = fw_.clock().now() + 0.01;
    fw_.setProductionFence(freeze);

    struct Job
    {
        KernelPrediction prediction;
        double start;
        double end;
    };
    std::vector<Job> jobs;
    jobs.reserve(points.size());
    std::vector<dut::KernelSchedule> program;
    program.reserve(points.size());

    double t = freeze + kScheduleMargin;
    for (const auto &point : points) {
        Job job;
        job.prediction = model_.predict(point.config, point.clockMHz);
        job.start = t;
        job.end = t + job.prediction.seconds;
        t = job.end + options_.interKernelGapSeconds;

        dut::KernelSchedule k;
        k.start = job.start;
        k.duration = job.prediction.seconds;
        k.sustainedPower = job.prediction.watts;
        program.push_back(k);
        jobs.push_back(job);
    }
    const double program_end = t + options_.interKernelGapSeconds;
    gpu_.setProgram(std::move(program));

    // Integrate energy per job window from the 20 kHz stream.
    struct WindowAccumulator
    {
        double energy = 0.0;
        std::uint64_t samples = 0;
    };
    std::vector<WindowAccumulator> windows(jobs.size());
    std::size_t cursor = 0;
    std::mutex cursor_mutex;

    const auto token = sensor_->addSampleListener(
        [&](const host::Sample &sample) {
            std::lock_guard<std::mutex> lock(cursor_mutex);
            while (cursor < jobs.size()
                   && sample.time > jobs[cursor].end) {
                ++cursor;
            }
            if (cursor >= jobs.size())
                return;
            const Job &job = jobs[cursor];
            if (sample.time >= job.start && sample.time <= job.end) {
                windows[cursor].energy +=
                    sample.totalPower() * firmware::kSampleInterval;
                ++windows[cursor].samples;
            }
        });

    // Let the stream run to the end of the program.
    fw_.setProductionFence(std::numeric_limits<double>::infinity());
    const bool complete = sensor_->waitUntil(program_end);
    sensor_->removeSampleListener(token);
    gpu_.clearProgram();
    if (!complete)
        throw DeviceError("AutoTuner: device disappeared during tune");

    std::vector<MeasurementRecord> records;
    records.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const Job &job = jobs[i];
        MeasurementRecord record;
        record.config = points[i].config;
        record.clockMHz = points[i].clockMHz;
        record.kernelSeconds = job.prediction.seconds;
        record.energyJoules = windows[i].energy;
        record.avgPowerWatts =
            windows[i].samples
                ? windows[i].energy
                      / (static_cast<double>(windows[i].samples)
                         * firmware::kSampleInterval)
                : 0.0;
        record.tflops = model_.problem().flops()
                        / record.kernelSeconds / 1e12;
        record.tflopPerJoule =
            record.energyJoules > 0.0
                ? model_.problem().flops() / record.energyJoules / 1e12
                : 0.0;
        // Tuning-time accounting: per-variant overhead plus `trials`
        // real executions (PowerSensor3 needs no extended re-runs).
        record.accountedSeconds =
            options_.perConfigOverheadSeconds
            + options_.trials * record.kernelSeconds;
        records.push_back(std::move(record));
    }
    return records;
}

TuningResult
AutoTuner::tuneExternal(const std::vector<Configuration> &configs,
                        const std::vector<double> &clocks)
{
    std::vector<TuningPoint> points;
    points.reserve(configs.size() * clocks.size());
    for (const auto &config : configs) {
        for (double clock : clocks)
            points.push_back({config, clock});
    }

    TuningResult result;
    result.meterName = "PowerSensor3";
    result.records = measureExternalBatch(points);
    for (const auto &record : result.records)
        result.totalTuningSeconds += record.accountedSeconds;
    return result;
}

TuningResult
AutoTuner::tuneAdaptive(SearchStrategy &strategy, Objective objective)
{
    if (sensor_ == nullptr) {
        throw UsageError(
            "AutoTuner: adaptive tuning needs the external sensor");
    }

    TuningResult result;
    result.meterName = "PowerSensor3";
    while (true) {
        const auto batch = strategy.nextBatch();
        if (batch.empty())
            break;
        auto records = measureExternalBatch(batch);

        std::vector<MeasuredPoint> feedback;
        feedback.reserve(records.size());
        for (std::size_t i = 0; i < records.size(); ++i) {
            MeasuredPoint point;
            point.point = batch[i];
            point.value = objective == Objective::Performance
                              ? records[i].tflops
                              : records[i].tflopPerJoule;
            feedback.push_back(std::move(point));
        }
        strategy.observe(feedback);

        for (auto &record : records) {
            result.totalTuningSeconds += record.accountedSeconds;
            result.records.push_back(std::move(record));
        }
    }
    return result;
}

TuningResult
AutoTuner::tuneOnboard(const std::vector<Configuration> &configs,
                       const std::vector<double> &clocks)
{
    // The on-board path needs no PowerSensor3 stream: the tuner runs
    // each variant continuously for an extended period and reads the
    // vendor API before and after. Virtual time is advanced directly
    // on the device clock.
    TuningResult result;
    result.meterName = onboard_->name();

    for (const auto &config : configs) {
        for (double clock : clocks) {
            const auto prediction = model_.predict(config, clock);

            // Continuous re-run: back-to-back kernels approximate a
            // constant load at the sustained power for the extended
            // duration.
            const double t0 = fw_.clock().now() + 1e-3;
            const double run = options_.onboardExtendedRunSeconds;
            gpu_.setProgram({{t0, run, prediction.watts, 0}});

            // Read the meter at the run start so its update grid
            // aligns with the load window.
            fw_.clock().advance(t0 - fw_.clock().now());
            const auto before = onboard_->read();
            fw_.clock().advance(run);
            const auto after = onboard_->read();
            gpu_.clearProgram();

            const double avg_watts = pmt::watts(before, after);

            MeasurementRecord record;
            record.config = config;
            record.clockMHz = clock;
            record.kernelSeconds = prediction.seconds;
            record.avgPowerWatts = avg_watts;
            record.energyJoules = avg_watts * prediction.seconds;
            record.tflops = model_.problem().flops()
                            / prediction.seconds / 1e12;
            record.tflopPerJoule =
                record.energyJoules > 0.0
                    ? model_.problem().flops() / record.energyJoules
                          / 1e12
                    : 0.0;
            record.accountedSeconds =
                options_.perConfigOverheadSeconds
                + options_.trials * record.kernelSeconds
                + options_.onboardExtendedRunSeconds;
            result.totalTuningSeconds += record.accountedSeconds;
            result.records.push_back(std::move(record));
        }
    }
    return result;
}

std::vector<std::size_t>
AutoTuner::paretoFront(const std::vector<MeasurementRecord> &records)
{
    std::vector<std::size_t> order(records.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (records[a].tflops != records[b].tflops)
                      return records[a].tflops > records[b].tflops;
                  return records[a].tflopPerJoule
                         > records[b].tflopPerJoule;
              });

    std::vector<std::size_t> front;
    double best_efficiency = -1.0;
    for (std::size_t idx : order) {
        if (records[idx].tflopPerJoule > best_efficiency) {
            front.push_back(idx);
            best_efficiency = records[idx].tflopPerJoule;
        }
    }
    return front;
}

} // namespace ps3::tuner
