/**
 * @file
 * Tunable-parameter search space (Kernel Tuner style, paper
 * Sec. V-A2): users declare parameters with their candidate values;
 * the tuner enumerates the cartesian product, optionally filtered by
 * constraints, and benchmarks every code variant.
 */

#ifndef PS3_TUNER_SEARCH_SPACE_HPP
#define PS3_TUNER_SEARCH_SPACE_HPP

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace ps3::tuner {

/** One tunable parameter with its candidate values. */
struct TunableParameter
{
    std::string name;
    std::vector<int> values;
};

/** A concrete assignment of every parameter. */
using Configuration = std::map<std::string, int>;

/** Predicate deciding whether a configuration is valid. */
using Constraint = std::function<bool(const Configuration &)>;

/** Cartesian-product search space with constraints. */
class SearchSpace
{
  public:
    /** Add a parameter; returns *this for chaining. */
    SearchSpace &add(const std::string &name, std::vector<int> values);

    /** Add a validity constraint. */
    SearchSpace &restrict(Constraint constraint);

    /** Enumerate all valid configurations. */
    std::vector<Configuration> enumerate() const;

    /** Number of parameters. */
    std::size_t parameterCount() const { return parameters_.size(); }

    /**
     * The Tensor-Core Beamformer's tunable parameters (paper: thread
     * block dimensions, fragments per block and per warp, double
     * buffering -> 512 variants).
     */
    static SearchSpace beamformerSpace();

  private:
    std::vector<TunableParameter> parameters_;
    std::vector<Constraint> constraints_;
};

} // namespace ps3::tuner

#endif // PS3_TUNER_SEARCH_SPACE_HPP
