#include "search_space.hpp"

#include "common/errors.hpp"

namespace ps3::tuner {

SearchSpace &
SearchSpace::add(const std::string &name, std::vector<int> values)
{
    if (values.empty())
        throw UsageError("SearchSpace: parameter without values");
    parameters_.push_back({name, std::move(values)});
    return *this;
}

SearchSpace &
SearchSpace::restrict(Constraint constraint)
{
    if (!constraint)
        throw UsageError("SearchSpace: null constraint");
    constraints_.push_back(std::move(constraint));
    return *this;
}

std::vector<Configuration>
SearchSpace::enumerate() const
{
    std::vector<Configuration> out;
    if (parameters_.empty())
        return out;

    // Odometer-style enumeration of the cartesian product.
    std::vector<std::size_t> index(parameters_.size(), 0);
    while (true) {
        Configuration config;
        for (std::size_t p = 0; p < parameters_.size(); ++p) {
            config[parameters_[p].name] =
                parameters_[p].values[index[p]];
        }
        bool valid = true;
        for (const auto &constraint : constraints_)
            valid = valid && constraint(config);
        if (valid)
            out.push_back(std::move(config));

        std::size_t p = 0;
        while (p < parameters_.size()
               && ++index[p] == parameters_[p].values.size()) {
            index[p] = 0;
            ++p;
        }
        if (p == parameters_.size())
            break;
    }
    return out;
}

SearchSpace
SearchSpace::beamformerSpace()
{
    SearchSpace space;
    space.add("block_warps", {2, 4, 8, 16})
        .add("block_y", {1, 2, 4, 8})
        .add("frags_per_block", {1, 2, 4, 8})
        .add("frags_per_warp", {1, 2, 4, 8})
        .add("double_buffer", {0, 1});
    return space;
}

} // namespace ps3::tuner
