#include "strategies.hpp"

#include <algorithm>

#include "common/errors.hpp"

namespace ps3::tuner {

RandomSearchStrategy::RandomSearchStrategy(const SearchSpace &space,
                                           std::vector<double> clocks,
                                           std::size_t budget,
                                           std::size_t batch_size,
                                           std::uint64_t seed)
    : configs_(space.enumerate()),
      clocks_(std::move(clocks)),
      budget_(budget),
      batchSize_(batch_size),
      rng_(seed)
{
    if (configs_.empty() || clocks_.empty())
        throw UsageError("RandomSearchStrategy: empty space");
    if (budget == 0 || batch_size == 0)
        throw UsageError("RandomSearchStrategy: zero budget/batch");
}

std::vector<TuningPoint>
RandomSearchStrategy::nextBatch()
{
    std::vector<TuningPoint> batch;
    while (batch.size() < batchSize_ && proposed_ < budget_) {
        TuningPoint point;
        point.config =
            configs_[rng_.uniformInt(0, configs_.size() - 1)];
        point.clockMHz =
            clocks_[rng_.uniformInt(0, clocks_.size() - 1)];
        batch.push_back(std::move(point));
        ++proposed_;
    }
    return batch;
}

void
RandomSearchStrategy::observe(const std::vector<MeasuredPoint> &)
{
    // Non-adaptive: feedback is recorded by the caller only.
}

LocalSearchStrategy::LocalSearchStrategy(const SearchSpace &space,
                                         std::vector<double> clocks,
                                         unsigned restarts,
                                         std::size_t max_points,
                                         std::uint64_t seed)
    : configs_(space.enumerate()),
      clocks_(std::move(clocks)),
      restartsLeft_(restarts),
      maxPoints_(max_points),
      rng_(seed)
{
    if (configs_.empty() || clocks_.empty())
        throw UsageError("LocalSearchStrategy: empty space");
    if (restarts == 0 || max_points == 0)
        throw UsageError("LocalSearchStrategy: zero budget");
}

TuningPoint
LocalSearchStrategy::randomPoint()
{
    TuningPoint point;
    point.config = configs_[rng_.uniformInt(0, configs_.size() - 1)];
    point.clockMHz = clocks_[rng_.uniformInt(0, clocks_.size() - 1)];
    return point;
}

std::vector<TuningPoint>
LocalSearchStrategy::neighbours(const TuningPoint &p) const
{
    // Single-parameter moves: for each parameter, the adjacent
    // values among the configurations that differ only there; for
    // the clock axis, the adjacent clock steps.
    std::vector<TuningPoint> out;
    for (const auto &candidate : configs_) {
        unsigned differing = 0;
        for (const auto &[name, value] : candidate) {
            if (p.config.at(name) != value)
                ++differing;
        }
        if (differing == 1) {
            TuningPoint n;
            n.config = candidate;
            n.clockMHz = p.clockMHz;
            out.push_back(std::move(n));
        }
    }
    const auto it =
        std::find(clocks_.begin(), clocks_.end(), p.clockMHz);
    if (it != clocks_.end()) {
        if (it != clocks_.begin())
            out.push_back({p.config, *(it - 1)});
        if (it + 1 != clocks_.end())
            out.push_back({p.config, *(it + 1)});
    }
    return out;
}

std::vector<TuningPoint>
LocalSearchStrategy::nextBatch()
{
    if (proposed_ >= maxPoints_)
        return {};

    if (!climbing_) {
        if (restartsLeft_ == 0)
            return {};
        --restartsLeft_;
        climbing_ = true;
        current_ = randomPoint();
        currentValue_ = -1.0;
        pendingNeighbours_ = {current_};
        ++proposed_;
        return pendingNeighbours_;
    }

    // Propose all neighbours of the current point (bounded by the
    // remaining budget).
    pendingNeighbours_ = neighbours(current_);
    if (pendingNeighbours_.size() > maxPoints_ - proposed_)
        pendingNeighbours_.resize(maxPoints_ - proposed_);
    proposed_ += pendingNeighbours_.size();
    if (pendingNeighbours_.empty())
        climbing_ = false;
    return pendingNeighbours_;
}

void
LocalSearchStrategy::observe(const std::vector<MeasuredPoint> &batch)
{
    if (!climbing_)
        return;
    // First batch of a climb is the start point itself.
    bool improved = false;
    for (const auto &measured : batch) {
        if (measured.value > currentValue_) {
            currentValue_ = measured.value;
            current_ = measured.point;
            improved = true;
        }
    }
    if (!improved) {
        // Local optimum: next nextBatch() starts a new climb.
        climbing_ = false;
    }
}

} // namespace ps3::tuner
