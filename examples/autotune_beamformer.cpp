/**
 * @file
 * Auto-tune the Tensor-Core Beamformer for performance and energy
 * efficiency with PowerSensor3 in the measurement loop (the workflow
 * of paper Fig. 8, on a reduced search space so the example runs in
 * seconds; bench_fig8_tuning_rtx4000 runs the full 5120-point
 * space).
 */

#include <cstdio>

#include "host/sim_setup.hpp"
#include "tuner/auto_tuner.hpp"

int
main()
{
    using namespace ps3;

    // GPU rig with locked clocks (tuning variant of the card).
    const auto gpu_spec = dut::GpuSpec::rtx4000Ada().tuningVariant();
    auto rig = host::rigs::gpuRig(gpu_spec);
    auto sensor = rig.connect();

    // A reduced space: 2 x 2 x 2 x 2 x 2 = 32 variants x 10 clocks.
    tuner::SearchSpace space;
    space.add("block_warps", {4, 8})
        .add("block_y", {2, 4})
        .add("frags_per_block", {2, 4})
        .add("frags_per_warp", {1, 2})
        .add("double_buffer", {0, 1});

    tuner::BeamformerModel model(gpu_spec);
    tuner::TuningOptions options;
    options.strategy = tuner::MeasurementStrategy::ExternalSensor;

    tuner::AutoTuner tuner(*rig.gpu, *rig.firmware, sensor.get(),
                           nullptr, model, options);
    const auto result = tuner.tune(space);

    std::printf("benchmarked %zu configurations through %s\n",
                result.records.size(), result.meterName.c_str());

    const auto front = tuner::AutoTuner::paretoFront(result.records);
    std::printf("Pareto front (%zu points):\n", front.size());
    std::printf("  %-10s %-10s %-10s %-8s\n", "TFLOP/s", "TFLOP/J",
                "power_W", "clock");
    for (const auto idx : front) {
        const auto &r = result.records[idx];
        std::printf("  %-10.2f %-10.4f %-10.2f %-8.0f\n", r.tflops,
                    r.tflopPerJoule, r.avgPowerWatts, r.clockMHz);
    }

    const auto &fastest = result.records[front.front()];
    const auto &greenest = result.records[front.back()];
    std::printf("fastest:        %.2f TFLOP/s at %.4f TFLOP/J\n",
                fastest.tflops, fastest.tflopPerJoule);
    std::printf("most efficient: %.2f TFLOP/s at %.4f TFLOP/J "
                "(%+.1f %% efficiency, %+.1f %% speed)\n",
                greenest.tflops, greenest.tflopPerJoule,
                100.0 * (greenest.tflopPerJoule
                             / fastest.tflopPerJoule
                         - 1.0),
                100.0 * (greenest.tflops / fastest.tflops - 1.0));
    std::printf("tuning time with PowerSensor3: %.1f s\n",
                result.totalTuningSeconds);
    return 0;
}
