/**
 * @file
 * Monitor a Jetson-style SoC development kit through its USB-C power
 * input (the setup of paper Fig. 9) and show two things the built-in
 * sensor cannot:
 *
 *  1. total-device power including the carrier board (the built-in
 *     sensor only sees the module);
 *  2. fine-grained transients (the built-in sensor updates at
 *     ~0.1 s).
 *
 * Also renders the baseboard display, which shows live readings when
 * the device is not being used by a host.
 */

#include <cstdio>

#include "host/sim_setup.hpp"
#include "pmt/vendor_sim.hpp"

int
main()
{
    using namespace ps3;

    auto rig = host::rigs::socRig(dut::GpuSpec::jetsonAgxOrinModule(),
                                  /*carrier_board_watts=*/4.8);

    // A short inference-style burst: 300 ms of load after 200 ms
    // idle.
    rig.soc->module().launchKernel(0.2, 0.3, /*sustained_power=*/42.0);

    auto sensor = rig.connect();
    auto builtin = pmt::makeJetsonBuiltinMeter(*rig.soc,
                                               rig.firmware->clock());

    // Sample both meters at 10 ms intervals across the burst.
    std::printf("%-8s %-16s %-16s %-12s\n", "t_s", "powersensor3_W",
                "builtin_W", "truth_W");
    double energy_ps3 = 0.0;
    double energy_builtin_start = builtin->read().joules;
    const auto token = sensor->addSampleListener(
        [&](const host::Sample &sample) {
            energy_ps3 += sample.totalPower()
                          * firmware::kSampleInterval;
            const auto sets = static_cast<std::uint64_t>(
                sample.time / firmware::kSampleInterval + 0.5);
            if (sets % 1000 != 0)
                return; // print every 50 ms
            std::printf("%-8.3f %-16.3f %-16.3f %-12.3f\n",
                        sample.time, sample.totalPower(),
                        builtin->read().watts,
                        rig.soc->truePower(sample.time));
        });
    sensor->waitUntil(0.8);
    sensor->removeSampleListener(token);

    const double energy_builtin =
        builtin->read().joules - energy_builtin_start;
    std::printf("\nenergy over 0.8 s: PowerSensor3 %.2f J, "
                "built-in %.2f J\n",
                energy_ps3, energy_builtin);
    std::printf("difference is mostly the carrier board "
                "(~%.1f W) the built-in sensor cannot see\n", 4.8);

    // The baseboard display (updates at ~10 Hz while streaming).
    std::printf("\nbaseboard display:\n");
    for (const auto &line : rig.firmware->display().render())
        std::printf("  | %s\n", line.c_str());
    return 0;
}
