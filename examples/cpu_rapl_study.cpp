/**
 * @file
 * CPU power study: PowerSensor3 on the EPS 12 V rail versus the RAPL
 * interface (PMT's CPU backend, paper Sec. V-A1).
 *
 * A 16-core package runs a staircase of load phases (4, 8, 16 cores)
 * while both meters observe it. RAPL tracks package energy well —
 * its limits are the 1 kHz update grid, the ~61 uJ quantisation, and
 * the 32-bit counter wrap that the reader must correct; PowerSensor3
 * additionally sees the rail directly, so the same library covers
 * devices that have no RAPL at all (the paper's NICs/SSDs/FPGAs
 * argument).
 */

#include <cstdio>

#include "dut/cpu_model.hpp"
#include "firmware/firmware.hpp"
#include "host/power_sensor.hpp"
#include "pmt/rapl_sim.hpp"
#include "transport/emulated_serial_port.hpp"

int
main()
{
    using namespace ps3;

    // Build a rig by hand: one 12 V / 10 A module on the EPS rail.
    const auto cpu_spec = dut::CpuSpec::server16Core();
    auto cpu = std::make_shared<dut::CpuDutModel>(cpu_spec);
    cpu->setProgram({
        {0.2, 0.4, 4, 1.0},
        {0.7, 0.4, 8, 1.0},
        {1.2, 0.4, 16, 1.0},
    });

    firmware::Firmware fw;
    auto supply = std::make_shared<dut::SupplyModel>(12.0);
    fw.attachModule(0, firmware::makeModule(
                           analog::modules::slot12V10A(), cpu, 0,
                           supply, /*seed=*/5));
    transport::EmulatedSerialPort port(fw);
    host::PowerSensor sensor(port);
    pmt::RaplSimMeter rapl(*cpu, fw.clock());

    std::printf("%-8s %-16s %-10s %-10s\n", "t_s", "powersensor3_W",
                "rapl_W", "truth_W");
    const auto rapl_start = rapl.read();
    double ps3_energy = 0.0;
    const auto token = sensor.addSampleListener(
        [&](const host::Sample &sample) {
            ps3_energy += sample.totalPower()
                          * firmware::kSampleInterval;
            const auto sets = static_cast<std::uint64_t>(
                sample.time / firmware::kSampleInterval + 0.5);
            if (sets % 2000 != 0)
                return; // print at 10 Hz
            std::printf("%-8.2f %-16.3f %-10.3f %-10.3f\n",
                        sample.time, sample.totalPower(),
                        rapl.read().watts,
                        cpu->packagePower(sample.time));
        });
    sensor.waitUntil(1.8);
    sensor.removeSampleListener(token);
    const auto rapl_end = rapl.read();

    std::printf("\nenergy over 1.8 s: PowerSensor3 %.2f J, RAPL "
                "%.2f J\n",
                ps3_energy, pmt::joules(rapl_start, rapl_end));
    std::printf("RAPL energy unit: %.1f uJ, update period 1 ms, "
                "32-bit counter (wrap handled by the reader)\n",
                pmt::RaplConfig{}.energyUnitJoules * 1e6);
    return 0;
}
