/**
 * @file
 * Profile a GPU kernel at 20 kHz and compare PowerSensor3 against
 * the GPU's built-in sensor (the workflow of paper Fig. 7).
 *
 * A synthetic fused-multiply-add workload runs for ~2 s on a
 * simulated RTX-4000-Ada-class GPU, executing its thread blocks in
 * sequential phases along the grid's y-dimension. PowerSensor3
 * captures the launch spike, the clock ramp, the dips between phases
 * and the slow return to idle; the NVML-style 10 Hz readings miss
 * the dips, and the legacy averaged mode smears the whole profile.
 *
 * Writes gpu_profile.csv with aligned series:
 *   time, powersensor3_W, nvml_instant_W, nvml_average_W, truth_W
 */

#include <cstdio>
#include <fstream>

#include "common/csv_writer.hpp"
#include "host/sim_setup.hpp"
#include "pmt/vendor_sim.hpp"

int
main()
{
    using namespace ps3;

    auto rig = host::rigs::gpuRig(dut::GpuSpec::rtx4000Ada());

    // Schedule the workload before connecting so the first samples
    // already see the idle lead-in: 0.4 s idle, 2.0 s kernel with 8
    // sequential thread-block phases, then the return to idle.
    const double kernel_start = 0.4;
    const double kernel_seconds = 2.0;
    rig.gpu->launchKernel(kernel_start, kernel_seconds,
                          /*sustained_power=*/120.0, /*phases=*/8);

    auto sensor = rig.connect();
    auto nvml_instant = pmt::makeNvmlMeter(*rig.gpu,
                                           rig.firmware->clock(),
                                           pmt::NvmlMode::Instant);
    auto nvml_average = pmt::makeNvmlMeter(*rig.gpu,
                                           rig.firmware->clock(),
                                           pmt::NvmlMode::Average);

    std::ofstream csv_file("gpu_profile.csv");
    CsvWriter csv(csv_file);
    csv.header({"time_s", "powersensor3_W", "nvml_instant_W",
                "nvml_average_W", "truth_W"});

    // Record at 1 ms resolution (decimated from the 20 kHz stream).
    double kernel_energy_ps3 = 0.0;
    const auto token = sensor->addSampleListener(
        [&](const host::Sample &sample) {
            if (sample.time >= kernel_start
                && sample.time <= kernel_start + kernel_seconds) {
                kernel_energy_ps3 +=
                    sample.totalPower() * firmware::kSampleInterval;
            }
            const auto sets = static_cast<std::uint64_t>(
                sample.time / firmware::kSampleInterval + 0.5);
            if (sets % 20 != 0)
                return; // keep every 20th sample (1 kHz output)
            csv.row({sample.time, sample.totalPower(),
                     nvml_instant->read().watts,
                     nvml_average->read().watts,
                     rig.gpu->totalPower(sample.time)});
        });

    const auto nvml_before = nvml_instant->read();
    sensor->waitUntil(4.0); // idle lead-in + kernel + decay
    sensor->removeSampleListener(token);
    const auto nvml_after = nvml_instant->read();

    const double truth_energy = [&] {
        double joules = 0.0;
        for (double t = kernel_start;
             t < kernel_start + kernel_seconds; t += 1e-4) {
            joules += rig.gpu->totalPower(t) * 1e-4;
        }
        return joules;
    }();

    std::printf("kernel window energy:\n");
    std::printf("  ground truth:  %8.2f J\n", truth_energy);
    std::printf("  PowerSensor3:  %8.2f J  (%+.2f %%)\n",
                kernel_energy_ps3,
                100.0 * (kernel_energy_ps3 / truth_energy - 1.0));
    const double nvml_energy =
        pmt::joules(nvml_before, nvml_after); // whole 4 s window
    std::printf("  NVML-instant:  %8.2f J over the full window "
                "(10 Hz; cannot isolate the kernel)\n",
                nvml_energy);
    std::printf("wrote gpu_profile.csv (%zu rows)\n", csv.rowCount());
    return 0;
}
