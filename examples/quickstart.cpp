/**
 * @file
 * Quickstart: the complete PowerSensor3 host-library API in one
 * short program.
 *
 * Connects to a simulated lab bench (a 12 V / 10 A module measuring
 * an 8 A electronic load), then demonstrates:
 *
 *  1. interval-based measurement (two States -> Joules/Watts/seconds),
 *  2. continuous-mode dumping at 20 kHz with markers,
 *  3. per-sample listeners,
 *  4. sensor configuration access.
 *
 * Against real hardware, replace the rig with
 *   ps3::host::PowerSensor sensor("/dev/ttyACM0");
 * and everything below is identical.
 */

#include <cstdio>

#include "analog/sensor_module_spec.hpp"
#include "common/statistics.hpp"
#include "host/sim_setup.hpp"

int
main()
{
    using namespace ps3;

    // --- Connect -------------------------------------------------
    auto rig = host::rigs::labBench(analog::modules::slot12V10A(),
                                    /*supply_volts=*/12.0,
                                    /*load_amps=*/8.0);
    auto sensor = rig.connect();

    std::printf("connected: firmware %s, %u active pair(s)\n",
                sensor->firmwareVersion().c_str(),
                sensor->activePairs());

    // --- 1. Interval mode ---------------------------------------
    const auto before = sensor->read();
    sensor->waitForSamples(20000); // one second of device time
    const auto after = sensor->read();

    std::printf("interval: %.3f s, %.3f J, %.3f W average\n",
                host::seconds(before, after),
                host::Joules(before, after),
                host::Watts(before, after));

    // --- 2. Continuous mode with markers ------------------------
    sensor->dump("quickstart_dump.txt");
    sensor->mark('A');
    sensor->waitForSamples(4000); // 200 ms at 20 kHz
    sensor->mark('B');
    sensor->waitForSamples(64);
    sensor->dump(""); // stop dumping
    std::printf("continuous: wrote quickstart_dump.txt "
                "(markers A/B inside)\n");

    // --- 3. Per-sample listener ----------------------------------
    RunningStatistics power;
    const auto token = sensor->addSampleListener(
        [&](const host::Sample &sample) {
            power.add(sample.totalPower());
        });
    sensor->waitForSamples(20000);
    sensor->removeSampleListener(token);
    std::printf("listener: %zu samples, mean %.3f W, "
                "std %.3f W, p-p %.3f W\n",
                power.count(), power.mean(), power.stddev(),
                power.peakToPeak());

    // --- 4. Configuration ----------------------------------------
    const auto config = sensor->config();
    std::printf("pair 0 '%s': vref %.4f V, sensitivity %.4f V/A, "
                "gain %.4f V/V\n",
                config[0].name.c_str(), config[0].vref,
                config[0].slope, config[1].slope);
    return 0;
}
