/**
 * @file
 * SSD power study (the workflow of paper Fig. 12): run fio-style
 * random-read and random-write workloads on the simulated NVMe
 * drive, replay its power draw through a PowerSensor3 on the
 * adapter's rails, and show that write bandwidth collapses under
 * garbage collection while power stays flat.
 */

#include <cstdio>

#include "common/statistics.hpp"
#include "host/sim_setup.hpp"
#include "storage/ssd_simulator.hpp"

int
main()
{
    using namespace ps3;

    storage::SsdSimulator ssd(storage::SsdSpec::samsung980Pro(),
                              /*seed=*/7);

    // --- Random reads at a few request sizes ---------------------
    std::printf("random reads (queue depth 128):\n");
    std::printf("  %-12s %-14s %-10s\n", "req_KiB", "bandwidth_MBps",
                "power_W");
    for (std::uint64_t req_kib : {4, 16, 64, 256, 1024}) {
        const auto samples =
            ssd.runRandomRead(1.0, req_kib * units::kKiB, 128);
        RunningStatistics bw, power;
        for (const auto &s : samples) {
            bw.add(s.readBandwidth);
            power.add(s.powerWatts);
        }
        std::printf("  %-12llu %-14.1f %-10.3f\n",
                    static_cast<unsigned long long>(req_kib),
                    bw.mean() / 1e6, power.mean());
    }

    // --- Random write into steady state -------------------------
    std::printf("\nrandom 4 KiB writes after sequential "
                "preconditioning:\n");
    ssd.preconditionSequential();
    const auto wr = ssd.runRandomWrite(240.0, 4 * units::kKiB, 32,
                                       /*dt=*/1.0);

    std::printf("  %-8s %-14s %-10s %-6s\n", "t_s", "bandwidth_MBps",
                "power_W", "gc");
    for (std::size_t i = 0; i < wr.size(); i += 30) {
        std::printf("  %-8.0f %-14.1f %-10.3f %-6.2f\n", wr[i].time,
                    wr[i].writeBandwidth / 1e6, wr[i].powerWatts,
                    wr[i].gcActivity);
    }
    std::printf("  write amplification: %.2f\n",
                wr.back().writeAmplification);

    // --- Measure a slice through PowerSensor3 -------------------
    // Replay the first 20 s of the write-phase power trace through
    // the M.2 adapter rails and verify the sensor tracks it.
    std::vector<storage::StorageSample> slice(
        wr.begin(), wr.begin() + std::min<std::size_t>(20, wr.size()));
    auto rig = host::rigs::traceRig(
        storage::toPowerTrace(slice, /*start_time=*/0.5),
        dut::TraceDut::m2AdapterRails());
    auto sensor = rig.connect();

    const auto t0 = sensor->read();
    sensor->waitUntil(slice.back().time + 0.5);
    const auto t1 = sensor->read();

    RunningStatistics truth;
    for (const auto &s : slice)
        truth.add(s.powerWatts);
    std::printf("\nPowerSensor3 on the adapter rails: %.3f W average "
                "(simulator ground truth %.3f W)\n",
                host::Watts(t0, t1), truth.mean());
    return 0;
}
