/**
 * @file
 * Whole-node power monitoring with a fully populated baseboard: all
 * four sensor-module sockets in use (the paper's "up to 4 sensor
 * board modules" capacity).
 *
 *   pair 0: 3.3 V PCIe slot   (GPU, via the modified riser)
 *   pair 1: 12 V PCIe slot    (GPU)
 *   pair 2: 12 V PCIe 8-pin   (GPU external power)
 *   pair 3: 12 V EPS          (CPU package)
 *
 * A mixed workload runs: the CPU ramps while the GPU executes a
 * kernel; the example attributes energy per component from one
 * 20 kHz stream and prints the node-level breakdown.
 */

#include <cstdio>

#include "dut/cpu_model.hpp"
#include "dut/gpu_model.hpp"
#include "firmware/firmware.hpp"
#include "host/power_sensor.hpp"
#include "transport/emulated_serial_port.hpp"

int
main()
{
    using namespace ps3;

    // Devices under test.
    auto gpu = std::make_shared<dut::GpuDutModel>(
        dut::GpuSpec::rtx4000Ada());
    gpu->launchKernel(0.3, 1.0, 120.0, /*phases=*/4);

    auto cpu = std::make_shared<dut::CpuDutModel>(
        dut::CpuSpec::server16Core());
    cpu->setProgram({{0.1, 0.6, 8, 1.0}, {0.8, 0.6, 16, 1.0}});

    // Fully populated baseboard.
    firmware::Firmware fw;
    const struct
    {
        analog::SensorModuleSpec module;
        std::shared_ptr<dut::Dut> dut;
        unsigned rail;
        double volts;
        const char *label;
    } sockets[4] = {
        {analog::modules::slot3V3_10A(), gpu, 0, 3.3, "GPU slot 3.3V"},
        {analog::modules::slot12V10A(), gpu, 1, 12.0, "GPU slot 12V"},
        {analog::modules::pcie8pin20A(), gpu, 2, 12.0, "GPU 8-pin"},
        {analog::modules::slot12V10A(), cpu, 0, 12.0, "CPU EPS"},
    };
    for (unsigned pair = 0; pair < 4; ++pair) {
        auto supply =
            std::make_shared<dut::SupplyModel>(sockets[pair].volts);
        fw.attachModule(pair,
                        firmware::makeModule(sockets[pair].module,
                                             sockets[pair].dut,
                                             sockets[pair].rail,
                                             supply, 10 + pair));
    }

    transport::EmulatedSerialPort port(fw);
    host::PowerSensor sensor(port);
    std::printf("monitoring %u sensor pairs\n",
                sensor.activePairs());

    const auto begin = sensor.read();
    std::printf("\n%-6s %-10s %-10s %-10s %-10s %-8s\n", "t_s",
                "gpu33_W", "gpu12_W", "gpu8pin_W", "cpu_W",
                "node_W");
    const auto token = sensor.addSampleListener(
        [&](const host::Sample &sample) {
            const auto sets = static_cast<std::uint64_t>(
                sample.time / firmware::kSampleInterval + 0.5);
            if (sets % 4000 != 0)
                return; // print at 5 Hz
            std::printf("%-6.2f %-10.2f %-10.2f %-10.2f %-10.2f "
                        "%-8.2f\n",
                        sample.time,
                        sample.voltage[0] * sample.current[0],
                        sample.voltage[1] * sample.current[1],
                        sample.voltage[2] * sample.current[2],
                        sample.voltage[3] * sample.current[3],
                        sample.totalPower());
        });
    sensor.waitUntil(1.6);
    sensor.removeSampleListener(token);
    const auto end = sensor.read();

    std::printf("\nenergy breakdown over %.2f s:\n",
                host::seconds(begin, end));
    const double gpu_joules = host::Joules(begin, end, 0)
                              + host::Joules(begin, end, 1)
                              + host::Joules(begin, end, 2);
    const double cpu_joules = host::Joules(begin, end, 3);
    std::printf("  GPU (3 rails): %8.2f J\n", gpu_joules);
    std::printf("  CPU (EPS):     %8.2f J\n", cpu_joules);
    std::printf("  node total:    %8.2f J (%.2f W average)\n",
                host::Joules(begin, end),
                host::Watts(begin, end));

    // The baseboard display shows the same totals.
    std::printf("\nbaseboard display:\n");
    for (const auto &line : fw.display().render())
        std::printf("  | %s\n", line.c_str());
    return 0;
}
