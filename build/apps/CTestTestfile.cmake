# CMake generated Testfile for 
# Source directory: /root/repo/apps
# Build directory: /root/repo/build/apps
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_psinfo "/root/repo/build/apps/psinfo" "--fast")
set_tests_properties(tool_psinfo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;11;add_test;/root/repo/apps/CMakeLists.txt;0;")
add_test(tool_pstest "/root/repo/build/apps/pstest" "--fast" "--samples" "2000")
set_tests_properties(tool_pstest PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;12;add_test;/root/repo/apps/CMakeLists.txt;0;")
add_test(tool_psconfig "/root/repo/build/apps/psconfig" "--fast" "--pair" "0" "--name" "renamed" "--enable")
set_tests_properties(tool_psconfig PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;13;add_test;/root/repo/apps/CMakeLists.txt;0;")
add_test(tool_pscal "/root/repo/build/apps/pscal" "--fast" "--sim" "bench:amps=0" "--pair" "0" "--volts" "12" "--samples" "5000")
set_tests_properties(tool_pscal PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;15;add_test;/root/repo/apps/CMakeLists.txt;0;")
add_test(tool_psrun "/root/repo/build/apps/psrun" "--fast" "--" "/bin/true")
set_tests_properties(tool_psrun PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;18;add_test;/root/repo/apps/CMakeLists.txt;0;")
add_test(tool_psinfo_gpu_rig "/root/repo/build/apps/psinfo" "--fast" "--sim" "gpu")
set_tests_properties(tool_psinfo_gpu_rig PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;19;add_test;/root/repo/apps/CMakeLists.txt;0;")
add_test(tool_psinfo_soc_rig "/root/repo/build/apps/psinfo" "--fast" "--sim" "soc")
set_tests_properties(tool_psinfo_soc_rig PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;20;add_test;/root/repo/apps/CMakeLists.txt;0;")
add_test(tool_help "/root/repo/build/apps/psrun" "--help")
set_tests_properties(tool_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;21;add_test;/root/repo/apps/CMakeLists.txt;0;")
add_test(tool_psdump_chain "sh" "-c" "/root/repo/build/apps/psrun --fast -o psdump_chain.txt -- /bin/sleep 0.05                  && /root/repo/build/apps/psdump psdump_chain.txt --stats --markers --between B E                  && rm -f psdump_chain.txt")
set_tests_properties(tool_psdump_chain PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;22;add_test;/root/repo/apps/CMakeLists.txt;0;")
