# Empty dependencies file for psrun.
# This may be replaced when dependencies are built.
