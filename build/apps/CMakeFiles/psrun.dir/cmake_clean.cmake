file(REMOVE_RECURSE
  "CMakeFiles/psrun.dir/psrun.cpp.o"
  "CMakeFiles/psrun.dir/psrun.cpp.o.d"
  "psrun"
  "psrun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psrun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
