# Empty dependencies file for pstest.
# This may be replaced when dependencies are built.
