file(REMOVE_RECURSE
  "CMakeFiles/pstest.dir/pstest.cpp.o"
  "CMakeFiles/pstest.dir/pstest.cpp.o.d"
  "pstest"
  "pstest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
