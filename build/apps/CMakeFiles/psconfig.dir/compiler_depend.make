# Empty compiler generated dependencies file for psconfig.
# This may be replaced when dependencies are built.
