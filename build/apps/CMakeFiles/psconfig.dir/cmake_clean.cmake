file(REMOVE_RECURSE
  "CMakeFiles/psconfig.dir/psconfig.cpp.o"
  "CMakeFiles/psconfig.dir/psconfig.cpp.o.d"
  "psconfig"
  "psconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
