file(REMOVE_RECURSE
  "CMakeFiles/ps3_tool_common.dir/tool_common.cpp.o"
  "CMakeFiles/ps3_tool_common.dir/tool_common.cpp.o.d"
  "libps3_tool_common.a"
  "libps3_tool_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps3_tool_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
