file(REMOVE_RECURSE
  "libps3_tool_common.a"
)
