# Empty dependencies file for pscal.
# This may be replaced when dependencies are built.
