file(REMOVE_RECURSE
  "CMakeFiles/pscal.dir/pscal.cpp.o"
  "CMakeFiles/pscal.dir/pscal.cpp.o.d"
  "pscal"
  "pscal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pscal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
