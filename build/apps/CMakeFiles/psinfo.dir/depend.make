# Empty dependencies file for psinfo.
# This may be replaced when dependencies are built.
