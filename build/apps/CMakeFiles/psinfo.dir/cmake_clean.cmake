file(REMOVE_RECURSE
  "CMakeFiles/psinfo.dir/psinfo.cpp.o"
  "CMakeFiles/psinfo.dir/psinfo.cpp.o.d"
  "psinfo"
  "psinfo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psinfo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
