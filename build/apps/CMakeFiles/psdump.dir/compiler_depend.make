# Empty compiler generated dependencies file for psdump.
# This may be replaced when dependencies are built.
