file(REMOVE_RECURSE
  "CMakeFiles/psdump.dir/psdump.cpp.o"
  "CMakeFiles/psdump.dir/psdump.cpp.o.d"
  "psdump"
  "psdump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psdump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
