# Empty compiler generated dependencies file for test_pmt.
# This may be replaced when dependencies are built.
