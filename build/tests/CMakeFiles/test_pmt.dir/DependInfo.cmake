
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_pmt.cpp" "tests/CMakeFiles/test_pmt.dir/test_pmt.cpp.o" "gcc" "tests/CMakeFiles/test_pmt.dir/test_pmt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/host/CMakeFiles/ps3_host.dir/DependInfo.cmake"
  "/root/repo/build/src/pmt/CMakeFiles/ps3_pmt.dir/DependInfo.cmake"
  "/root/repo/build/src/tuner/CMakeFiles/ps3_tuner.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ps3_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/firmware/CMakeFiles/ps3_firmware.dir/DependInfo.cmake"
  "/root/repo/build/src/analog/CMakeFiles/ps3_analog.dir/DependInfo.cmake"
  "/root/repo/build/src/dut/CMakeFiles/ps3_dut.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/ps3_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ps3_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
