file(REMOVE_RECURSE
  "CMakeFiles/test_firmware_protocol.dir/test_firmware_protocol.cpp.o"
  "CMakeFiles/test_firmware_protocol.dir/test_firmware_protocol.cpp.o.d"
  "test_firmware_protocol"
  "test_firmware_protocol.pdb"
  "test_firmware_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_firmware_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
