# Empty dependencies file for test_dump_reader.
# This may be replaced when dependencies are built.
