file(REMOVE_RECURSE
  "CMakeFiles/test_dump_reader.dir/test_dump_reader.cpp.o"
  "CMakeFiles/test_dump_reader.dir/test_dump_reader.cpp.o.d"
  "test_dump_reader"
  "test_dump_reader.pdb"
  "test_dump_reader[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dump_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
