file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_rapl.dir/test_cpu_rapl.cpp.o"
  "CMakeFiles/test_cpu_rapl.dir/test_cpu_rapl.cpp.o.d"
  "test_cpu_rapl"
  "test_cpu_rapl.pdb"
  "test_cpu_rapl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_rapl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
