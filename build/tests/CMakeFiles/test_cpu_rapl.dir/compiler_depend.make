# Empty compiler generated dependencies file for test_cpu_rapl.
# This may be replaced when dependencies are built.
