file(REMOVE_RECURSE
  "CMakeFiles/test_common_statistics.dir/test_common_statistics.cpp.o"
  "CMakeFiles/test_common_statistics.dir/test_common_statistics.cpp.o.d"
  "test_common_statistics"
  "test_common_statistics.pdb"
  "test_common_statistics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_statistics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
