# Empty dependencies file for test_common_statistics.
# This may be replaced when dependencies are built.
