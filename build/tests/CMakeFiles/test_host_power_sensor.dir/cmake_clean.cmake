file(REMOVE_RECURSE
  "CMakeFiles/test_host_power_sensor.dir/test_host_power_sensor.cpp.o"
  "CMakeFiles/test_host_power_sensor.dir/test_host_power_sensor.cpp.o.d"
  "test_host_power_sensor"
  "test_host_power_sensor.pdb"
  "test_host_power_sensor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_host_power_sensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
