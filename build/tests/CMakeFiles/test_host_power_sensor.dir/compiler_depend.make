# Empty compiler generated dependencies file for test_host_power_sensor.
# This may be replaced when dependencies are built.
