file(REMOVE_RECURSE
  "CMakeFiles/test_analog_sensors.dir/test_analog_sensors.cpp.o"
  "CMakeFiles/test_analog_sensors.dir/test_analog_sensors.cpp.o.d"
  "test_analog_sensors"
  "test_analog_sensors.pdb"
  "test_analog_sensors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analog_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
