file(REMOVE_RECURSE
  "CMakeFiles/test_dut_models.dir/test_dut_models.cpp.o"
  "CMakeFiles/test_dut_models.dir/test_dut_models.cpp.o.d"
  "test_dut_models"
  "test_dut_models.pdb"
  "test_dut_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dut_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
