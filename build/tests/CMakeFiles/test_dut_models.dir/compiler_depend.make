# Empty compiler generated dependencies file for test_dut_models.
# This may be replaced when dependencies are built.
