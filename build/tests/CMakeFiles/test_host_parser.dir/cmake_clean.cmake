file(REMOVE_RECURSE
  "CMakeFiles/test_host_parser.dir/test_host_parser.cpp.o"
  "CMakeFiles/test_host_parser.dir/test_host_parser.cpp.o.d"
  "test_host_parser"
  "test_host_parser.pdb"
  "test_host_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_host_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
