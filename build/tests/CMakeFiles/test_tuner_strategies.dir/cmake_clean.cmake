file(REMOVE_RECURSE
  "CMakeFiles/test_tuner_strategies.dir/test_tuner_strategies.cpp.o"
  "CMakeFiles/test_tuner_strategies.dir/test_tuner_strategies.cpp.o.d"
  "test_tuner_strategies"
  "test_tuner_strategies.pdb"
  "test_tuner_strategies[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tuner_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
