# Empty compiler generated dependencies file for test_firmware_fuzz.
# This may be replaced when dependencies are built.
