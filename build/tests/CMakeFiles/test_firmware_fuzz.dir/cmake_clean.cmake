file(REMOVE_RECURSE
  "CMakeFiles/test_firmware_fuzz.dir/test_firmware_fuzz.cpp.o"
  "CMakeFiles/test_firmware_fuzz.dir/test_firmware_fuzz.cpp.o.d"
  "test_firmware_fuzz"
  "test_firmware_fuzz.pdb"
  "test_firmware_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_firmware_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
