file(REMOVE_RECURSE
  "CMakeFiles/test_common_containers.dir/test_common_containers.cpp.o"
  "CMakeFiles/test_common_containers.dir/test_common_containers.cpp.o.d"
  "test_common_containers"
  "test_common_containers.pdb"
  "test_common_containers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_containers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
