# Empty compiler generated dependencies file for test_common_containers.
# This may be replaced when dependencies are built.
