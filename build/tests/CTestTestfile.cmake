# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common_statistics[1]_include.cmake")
include("/root/repo/build/tests/test_common_containers[1]_include.cmake")
include("/root/repo/build/tests/test_analog_sensors[1]_include.cmake")
include("/root/repo/build/tests/test_dut_models[1]_include.cmake")
include("/root/repo/build/tests/test_gpu_model[1]_include.cmake")
include("/root/repo/build/tests/test_transport[1]_include.cmake")
include("/root/repo/build/tests/test_firmware_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_firmware[1]_include.cmake")
include("/root/repo/build/tests/test_firmware_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_host_parser[1]_include.cmake")
include("/root/repo/build/tests/test_host_power_sensor[1]_include.cmake")
include("/root/repo/build/tests/test_pmt[1]_include.cmake")
include("/root/repo/build/tests/test_tuner[1]_include.cmake")
include("/root/repo/build/tests/test_tuner_strategies[1]_include.cmake")
include("/root/repo/build/tests/test_storage[1]_include.cmake")
include("/root/repo/build/tests/test_display[1]_include.cmake")
include("/root/repo/build/tests/test_dump_reader[1]_include.cmake")
include("/root/repo/build/tests/test_cpu_rapl[1]_include.cmake")
include("/root/repo/build/tests/test_integration_smoke[1]_include.cmake")
