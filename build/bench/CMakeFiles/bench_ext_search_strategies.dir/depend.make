# Empty dependencies file for bench_ext_search_strategies.
# This may be replaced when dependencies are built.
