# Empty dependencies file for bench_fig5_step_response.
# This may be replaced when dependencies are built.
