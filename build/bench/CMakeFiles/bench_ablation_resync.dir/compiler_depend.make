# Empty compiler generated dependencies file for bench_ablation_resync.
# This may be replaced when dependencies are built.
