file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_averaging.dir/bench_table2_averaging.cpp.o"
  "CMakeFiles/bench_table2_averaging.dir/bench_table2_averaging.cpp.o.d"
  "bench_table2_averaging"
  "bench_table2_averaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_averaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
