# Empty dependencies file for bench_table2_averaging.
# This may be replaced when dependencies are built.
