# Empty compiler generated dependencies file for bench_fig7a_nvidia_comparison.
# This may be replaced when dependencies are built.
