file(REMOVE_RECURSE
  "CMakeFiles/bench_stability_longterm.dir/bench_stability_longterm.cpp.o"
  "CMakeFiles/bench_stability_longterm.dir/bench_stability_longterm.cpp.o.d"
  "bench_stability_longterm"
  "bench_stability_longterm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stability_longterm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
