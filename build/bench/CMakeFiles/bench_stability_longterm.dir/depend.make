# Empty dependencies file for bench_stability_longterm.
# This may be replaced when dependencies are built.
