# Empty compiler generated dependencies file for bench_fig10_tuning_jetson.
# This may be replaced when dependencies are built.
