file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_tuning_jetson.dir/bench_fig10_tuning_jetson.cpp.o"
  "CMakeFiles/bench_fig10_tuning_jetson.dir/bench_fig10_tuning_jetson.cpp.o.d"
  "bench_fig10_tuning_jetson"
  "bench_fig10_tuning_jetson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_tuning_jetson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
