# Empty dependencies file for bench_fig4_power_error.
# This may be replaced when dependencies are built.
