# Empty dependencies file for bench_fig12a_ssd_randread.
# This may be replaced when dependencies are built.
