file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12a_ssd_randread.dir/bench_fig12a_ssd_randread.cpp.o"
  "CMakeFiles/bench_fig12a_ssd_randread.dir/bench_fig12a_ssd_randread.cpp.o.d"
  "bench_fig12a_ssd_randread"
  "bench_fig12a_ssd_randread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12a_ssd_randread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
