# Empty dependencies file for bench_ablation_averaging.
# This may be replaced when dependencies are built.
