file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_hostlib.dir/bench_micro_hostlib.cpp.o"
  "CMakeFiles/bench_micro_hostlib.dir/bench_micro_hostlib.cpp.o.d"
  "bench_micro_hostlib"
  "bench_micro_hostlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_hostlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
