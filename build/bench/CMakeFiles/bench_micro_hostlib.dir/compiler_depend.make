# Empty compiler generated dependencies file for bench_micro_hostlib.
# This may be replaced when dependencies are built.
