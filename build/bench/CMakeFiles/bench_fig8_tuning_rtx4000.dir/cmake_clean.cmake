file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_tuning_rtx4000.dir/bench_fig8_tuning_rtx4000.cpp.o"
  "CMakeFiles/bench_fig8_tuning_rtx4000.dir/bench_fig8_tuning_rtx4000.cpp.o.d"
  "bench_fig8_tuning_rtx4000"
  "bench_fig8_tuning_rtx4000.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_tuning_rtx4000.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
