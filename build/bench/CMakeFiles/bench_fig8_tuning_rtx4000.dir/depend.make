# Empty dependencies file for bench_fig8_tuning_rtx4000.
# This may be replaced when dependencies are built.
