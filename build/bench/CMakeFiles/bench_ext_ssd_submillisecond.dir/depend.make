# Empty dependencies file for bench_ext_ssd_submillisecond.
# This may be replaced when dependencies are built.
