file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_ssd_submillisecond.dir/bench_ext_ssd_submillisecond.cpp.o"
  "CMakeFiles/bench_ext_ssd_submillisecond.dir/bench_ext_ssd_submillisecond.cpp.o.d"
  "bench_ext_ssd_submillisecond"
  "bench_ext_ssd_submillisecond.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_ssd_submillisecond.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
