file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12b_ssd_randwrite.dir/bench_fig12b_ssd_randwrite.cpp.o"
  "CMakeFiles/bench_fig12b_ssd_randwrite.dir/bench_fig12b_ssd_randwrite.cpp.o.d"
  "bench_fig12b_ssd_randwrite"
  "bench_fig12b_ssd_randwrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12b_ssd_randwrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
