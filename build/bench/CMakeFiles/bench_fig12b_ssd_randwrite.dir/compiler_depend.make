# Empty compiler generated dependencies file for bench_fig12b_ssd_randwrite.
# This may be replaced when dependencies are built.
