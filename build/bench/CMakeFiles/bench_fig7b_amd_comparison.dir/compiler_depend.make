# Empty compiler generated dependencies file for bench_fig7b_amd_comparison.
# This may be replaced when dependencies are built.
