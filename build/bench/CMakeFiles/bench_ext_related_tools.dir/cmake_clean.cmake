file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_related_tools.dir/bench_ext_related_tools.cpp.o"
  "CMakeFiles/bench_ext_related_tools.dir/bench_ext_related_tools.cpp.o.d"
  "bench_ext_related_tools"
  "bench_ext_related_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_related_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
