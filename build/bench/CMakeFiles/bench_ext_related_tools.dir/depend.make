# Empty dependencies file for bench_ext_related_tools.
# This may be replaced when dependencies are built.
