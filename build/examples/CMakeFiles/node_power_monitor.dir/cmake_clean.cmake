file(REMOVE_RECURSE
  "CMakeFiles/node_power_monitor.dir/node_power_monitor.cpp.o"
  "CMakeFiles/node_power_monitor.dir/node_power_monitor.cpp.o.d"
  "node_power_monitor"
  "node_power_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_power_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
