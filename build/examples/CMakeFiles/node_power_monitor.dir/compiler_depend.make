# Empty compiler generated dependencies file for node_power_monitor.
# This may be replaced when dependencies are built.
