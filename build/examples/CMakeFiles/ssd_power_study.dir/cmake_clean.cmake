file(REMOVE_RECURSE
  "CMakeFiles/ssd_power_study.dir/ssd_power_study.cpp.o"
  "CMakeFiles/ssd_power_study.dir/ssd_power_study.cpp.o.d"
  "ssd_power_study"
  "ssd_power_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssd_power_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
