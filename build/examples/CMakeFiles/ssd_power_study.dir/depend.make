# Empty dependencies file for ssd_power_study.
# This may be replaced when dependencies are built.
