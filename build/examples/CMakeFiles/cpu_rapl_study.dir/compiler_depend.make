# Empty compiler generated dependencies file for cpu_rapl_study.
# This may be replaced when dependencies are built.
