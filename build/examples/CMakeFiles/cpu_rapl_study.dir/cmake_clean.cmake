file(REMOVE_RECURSE
  "CMakeFiles/cpu_rapl_study.dir/cpu_rapl_study.cpp.o"
  "CMakeFiles/cpu_rapl_study.dir/cpu_rapl_study.cpp.o.d"
  "cpu_rapl_study"
  "cpu_rapl_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_rapl_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
