# Empty compiler generated dependencies file for gpu_kernel_profile.
# This may be replaced when dependencies are built.
