file(REMOVE_RECURSE
  "CMakeFiles/gpu_kernel_profile.dir/gpu_kernel_profile.cpp.o"
  "CMakeFiles/gpu_kernel_profile.dir/gpu_kernel_profile.cpp.o.d"
  "gpu_kernel_profile"
  "gpu_kernel_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_kernel_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
