file(REMOVE_RECURSE
  "CMakeFiles/autotune_beamformer.dir/autotune_beamformer.cpp.o"
  "CMakeFiles/autotune_beamformer.dir/autotune_beamformer.cpp.o.d"
  "autotune_beamformer"
  "autotune_beamformer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune_beamformer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
