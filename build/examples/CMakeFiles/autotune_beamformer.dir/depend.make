# Empty dependencies file for autotune_beamformer.
# This may be replaced when dependencies are built.
