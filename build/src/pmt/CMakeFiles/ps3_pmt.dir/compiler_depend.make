# Empty compiler generated dependencies file for ps3_pmt.
# This may be replaced when dependencies are built.
