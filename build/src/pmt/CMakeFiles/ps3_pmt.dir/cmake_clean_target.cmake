file(REMOVE_RECURSE
  "libps3_pmt.a"
)
