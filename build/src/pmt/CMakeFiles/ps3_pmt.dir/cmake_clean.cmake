file(REMOVE_RECURSE
  "CMakeFiles/ps3_pmt.dir/power_meter.cpp.o"
  "CMakeFiles/ps3_pmt.dir/power_meter.cpp.o.d"
  "CMakeFiles/ps3_pmt.dir/rapl_sim.cpp.o"
  "CMakeFiles/ps3_pmt.dir/rapl_sim.cpp.o.d"
  "CMakeFiles/ps3_pmt.dir/vendor_sim.cpp.o"
  "CMakeFiles/ps3_pmt.dir/vendor_sim.cpp.o.d"
  "libps3_pmt.a"
  "libps3_pmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps3_pmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
