# Empty dependencies file for ps3_tuner.
# This may be replaced when dependencies are built.
