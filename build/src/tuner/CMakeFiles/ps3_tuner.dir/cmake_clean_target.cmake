file(REMOVE_RECURSE
  "libps3_tuner.a"
)
