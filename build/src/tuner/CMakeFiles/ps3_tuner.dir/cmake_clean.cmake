file(REMOVE_RECURSE
  "CMakeFiles/ps3_tuner.dir/auto_tuner.cpp.o"
  "CMakeFiles/ps3_tuner.dir/auto_tuner.cpp.o.d"
  "CMakeFiles/ps3_tuner.dir/beamformer_model.cpp.o"
  "CMakeFiles/ps3_tuner.dir/beamformer_model.cpp.o.d"
  "CMakeFiles/ps3_tuner.dir/search_space.cpp.o"
  "CMakeFiles/ps3_tuner.dir/search_space.cpp.o.d"
  "CMakeFiles/ps3_tuner.dir/strategies.cpp.o"
  "CMakeFiles/ps3_tuner.dir/strategies.cpp.o.d"
  "libps3_tuner.a"
  "libps3_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps3_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
