
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/byte_queue.cpp" "src/transport/CMakeFiles/ps3_transport.dir/byte_queue.cpp.o" "gcc" "src/transport/CMakeFiles/ps3_transport.dir/byte_queue.cpp.o.d"
  "/root/repo/src/transport/emulated_serial_port.cpp" "src/transport/CMakeFiles/ps3_transport.dir/emulated_serial_port.cpp.o" "gcc" "src/transport/CMakeFiles/ps3_transport.dir/emulated_serial_port.cpp.o.d"
  "/root/repo/src/transport/fault_injection.cpp" "src/transport/CMakeFiles/ps3_transport.dir/fault_injection.cpp.o" "gcc" "src/transport/CMakeFiles/ps3_transport.dir/fault_injection.cpp.o.d"
  "/root/repo/src/transport/posix_serial_port.cpp" "src/transport/CMakeFiles/ps3_transport.dir/posix_serial_port.cpp.o" "gcc" "src/transport/CMakeFiles/ps3_transport.dir/posix_serial_port.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ps3_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
