file(REMOVE_RECURSE
  "libps3_transport.a"
)
