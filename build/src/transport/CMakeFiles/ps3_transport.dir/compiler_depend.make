# Empty compiler generated dependencies file for ps3_transport.
# This may be replaced when dependencies are built.
