file(REMOVE_RECURSE
  "CMakeFiles/ps3_transport.dir/byte_queue.cpp.o"
  "CMakeFiles/ps3_transport.dir/byte_queue.cpp.o.d"
  "CMakeFiles/ps3_transport.dir/emulated_serial_port.cpp.o"
  "CMakeFiles/ps3_transport.dir/emulated_serial_port.cpp.o.d"
  "CMakeFiles/ps3_transport.dir/fault_injection.cpp.o"
  "CMakeFiles/ps3_transport.dir/fault_injection.cpp.o.d"
  "CMakeFiles/ps3_transport.dir/posix_serial_port.cpp.o"
  "CMakeFiles/ps3_transport.dir/posix_serial_port.cpp.o.d"
  "libps3_transport.a"
  "libps3_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps3_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
