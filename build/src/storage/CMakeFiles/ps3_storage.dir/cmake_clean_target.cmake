file(REMOVE_RECURSE
  "libps3_storage.a"
)
