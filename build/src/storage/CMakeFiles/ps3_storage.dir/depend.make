# Empty dependencies file for ps3_storage.
# This may be replaced when dependencies are built.
