file(REMOVE_RECURSE
  "CMakeFiles/ps3_storage.dir/ssd_simulator.cpp.o"
  "CMakeFiles/ps3_storage.dir/ssd_simulator.cpp.o.d"
  "libps3_storage.a"
  "libps3_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps3_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
