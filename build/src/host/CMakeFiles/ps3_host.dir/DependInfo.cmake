
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/host/calibrator.cpp" "src/host/CMakeFiles/ps3_host.dir/calibrator.cpp.o" "gcc" "src/host/CMakeFiles/ps3_host.dir/calibrator.cpp.o.d"
  "/root/repo/src/host/dump_reader.cpp" "src/host/CMakeFiles/ps3_host.dir/dump_reader.cpp.o" "gcc" "src/host/CMakeFiles/ps3_host.dir/dump_reader.cpp.o.d"
  "/root/repo/src/host/power_sensor.cpp" "src/host/CMakeFiles/ps3_host.dir/power_sensor.cpp.o" "gcc" "src/host/CMakeFiles/ps3_host.dir/power_sensor.cpp.o.d"
  "/root/repo/src/host/sim_setup.cpp" "src/host/CMakeFiles/ps3_host.dir/sim_setup.cpp.o" "gcc" "src/host/CMakeFiles/ps3_host.dir/sim_setup.cpp.o.d"
  "/root/repo/src/host/state.cpp" "src/host/CMakeFiles/ps3_host.dir/state.cpp.o" "gcc" "src/host/CMakeFiles/ps3_host.dir/state.cpp.o.d"
  "/root/repo/src/host/stream_parser.cpp" "src/host/CMakeFiles/ps3_host.dir/stream_parser.cpp.o" "gcc" "src/host/CMakeFiles/ps3_host.dir/stream_parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analog/CMakeFiles/ps3_analog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ps3_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dut/CMakeFiles/ps3_dut.dir/DependInfo.cmake"
  "/root/repo/build/src/firmware/CMakeFiles/ps3_firmware.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/ps3_transport.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
