file(REMOVE_RECURSE
  "libps3_host.a"
)
