file(REMOVE_RECURSE
  "CMakeFiles/ps3_host.dir/calibrator.cpp.o"
  "CMakeFiles/ps3_host.dir/calibrator.cpp.o.d"
  "CMakeFiles/ps3_host.dir/dump_reader.cpp.o"
  "CMakeFiles/ps3_host.dir/dump_reader.cpp.o.d"
  "CMakeFiles/ps3_host.dir/power_sensor.cpp.o"
  "CMakeFiles/ps3_host.dir/power_sensor.cpp.o.d"
  "CMakeFiles/ps3_host.dir/sim_setup.cpp.o"
  "CMakeFiles/ps3_host.dir/sim_setup.cpp.o.d"
  "CMakeFiles/ps3_host.dir/state.cpp.o"
  "CMakeFiles/ps3_host.dir/state.cpp.o.d"
  "CMakeFiles/ps3_host.dir/stream_parser.cpp.o"
  "CMakeFiles/ps3_host.dir/stream_parser.cpp.o.d"
  "libps3_host.a"
  "libps3_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps3_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
