# Empty compiler generated dependencies file for ps3_host.
# This may be replaced when dependencies are built.
