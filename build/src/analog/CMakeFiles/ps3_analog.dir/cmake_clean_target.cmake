file(REMOVE_RECURSE
  "libps3_analog.a"
)
