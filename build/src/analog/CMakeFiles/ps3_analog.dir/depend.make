# Empty dependencies file for ps3_analog.
# This may be replaced when dependencies are built.
