
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analog/error_budget.cpp" "src/analog/CMakeFiles/ps3_analog.dir/error_budget.cpp.o" "gcc" "src/analog/CMakeFiles/ps3_analog.dir/error_budget.cpp.o.d"
  "/root/repo/src/analog/sensor_models.cpp" "src/analog/CMakeFiles/ps3_analog.dir/sensor_models.cpp.o" "gcc" "src/analog/CMakeFiles/ps3_analog.dir/sensor_models.cpp.o.d"
  "/root/repo/src/analog/sensor_module_spec.cpp" "src/analog/CMakeFiles/ps3_analog.dir/sensor_module_spec.cpp.o" "gcc" "src/analog/CMakeFiles/ps3_analog.dir/sensor_module_spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ps3_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
