file(REMOVE_RECURSE
  "CMakeFiles/ps3_analog.dir/error_budget.cpp.o"
  "CMakeFiles/ps3_analog.dir/error_budget.cpp.o.d"
  "CMakeFiles/ps3_analog.dir/sensor_models.cpp.o"
  "CMakeFiles/ps3_analog.dir/sensor_models.cpp.o.d"
  "CMakeFiles/ps3_analog.dir/sensor_module_spec.cpp.o"
  "CMakeFiles/ps3_analog.dir/sensor_module_spec.cpp.o.d"
  "libps3_analog.a"
  "libps3_analog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps3_analog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
