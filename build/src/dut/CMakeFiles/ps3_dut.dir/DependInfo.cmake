
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dut/cpu_model.cpp" "src/dut/CMakeFiles/ps3_dut.dir/cpu_model.cpp.o" "gcc" "src/dut/CMakeFiles/ps3_dut.dir/cpu_model.cpp.o.d"
  "/root/repo/src/dut/dut.cpp" "src/dut/CMakeFiles/ps3_dut.dir/dut.cpp.o" "gcc" "src/dut/CMakeFiles/ps3_dut.dir/dut.cpp.o.d"
  "/root/repo/src/dut/gpu_model.cpp" "src/dut/CMakeFiles/ps3_dut.dir/gpu_model.cpp.o" "gcc" "src/dut/CMakeFiles/ps3_dut.dir/gpu_model.cpp.o.d"
  "/root/repo/src/dut/loads.cpp" "src/dut/CMakeFiles/ps3_dut.dir/loads.cpp.o" "gcc" "src/dut/CMakeFiles/ps3_dut.dir/loads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ps3_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
