file(REMOVE_RECURSE
  "libps3_dut.a"
)
