# Empty dependencies file for ps3_dut.
# This may be replaced when dependencies are built.
