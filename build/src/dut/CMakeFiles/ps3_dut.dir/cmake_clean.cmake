file(REMOVE_RECURSE
  "CMakeFiles/ps3_dut.dir/cpu_model.cpp.o"
  "CMakeFiles/ps3_dut.dir/cpu_model.cpp.o.d"
  "CMakeFiles/ps3_dut.dir/dut.cpp.o"
  "CMakeFiles/ps3_dut.dir/dut.cpp.o.d"
  "CMakeFiles/ps3_dut.dir/gpu_model.cpp.o"
  "CMakeFiles/ps3_dut.dir/gpu_model.cpp.o.d"
  "CMakeFiles/ps3_dut.dir/loads.cpp.o"
  "CMakeFiles/ps3_dut.dir/loads.cpp.o.d"
  "libps3_dut.a"
  "libps3_dut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps3_dut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
