# Empty dependencies file for ps3_common.
# This may be replaced when dependencies are built.
