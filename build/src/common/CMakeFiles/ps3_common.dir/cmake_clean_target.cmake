file(REMOVE_RECURSE
  "libps3_common.a"
)
