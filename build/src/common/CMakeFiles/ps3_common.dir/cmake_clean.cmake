file(REMOVE_RECURSE
  "CMakeFiles/ps3_common.dir/csv_writer.cpp.o"
  "CMakeFiles/ps3_common.dir/csv_writer.cpp.o.d"
  "CMakeFiles/ps3_common.dir/logging.cpp.o"
  "CMakeFiles/ps3_common.dir/logging.cpp.o.d"
  "CMakeFiles/ps3_common.dir/statistics.cpp.o"
  "CMakeFiles/ps3_common.dir/statistics.cpp.o.d"
  "CMakeFiles/ps3_common.dir/time_source.cpp.o"
  "CMakeFiles/ps3_common.dir/time_source.cpp.o.d"
  "libps3_common.a"
  "libps3_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps3_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
