
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/csv_writer.cpp" "src/common/CMakeFiles/ps3_common.dir/csv_writer.cpp.o" "gcc" "src/common/CMakeFiles/ps3_common.dir/csv_writer.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/common/CMakeFiles/ps3_common.dir/logging.cpp.o" "gcc" "src/common/CMakeFiles/ps3_common.dir/logging.cpp.o.d"
  "/root/repo/src/common/statistics.cpp" "src/common/CMakeFiles/ps3_common.dir/statistics.cpp.o" "gcc" "src/common/CMakeFiles/ps3_common.dir/statistics.cpp.o.d"
  "/root/repo/src/common/time_source.cpp" "src/common/CMakeFiles/ps3_common.dir/time_source.cpp.o" "gcc" "src/common/CMakeFiles/ps3_common.dir/time_source.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
