file(REMOVE_RECURSE
  "libps3_firmware.a"
)
