
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/firmware/display.cpp" "src/firmware/CMakeFiles/ps3_firmware.dir/display.cpp.o" "gcc" "src/firmware/CMakeFiles/ps3_firmware.dir/display.cpp.o.d"
  "/root/repo/src/firmware/eeprom.cpp" "src/firmware/CMakeFiles/ps3_firmware.dir/eeprom.cpp.o" "gcc" "src/firmware/CMakeFiles/ps3_firmware.dir/eeprom.cpp.o.d"
  "/root/repo/src/firmware/firmware.cpp" "src/firmware/CMakeFiles/ps3_firmware.dir/firmware.cpp.o" "gcc" "src/firmware/CMakeFiles/ps3_firmware.dir/firmware.cpp.o.d"
  "/root/repo/src/firmware/font5x7.cpp" "src/firmware/CMakeFiles/ps3_firmware.dir/font5x7.cpp.o" "gcc" "src/firmware/CMakeFiles/ps3_firmware.dir/font5x7.cpp.o.d"
  "/root/repo/src/firmware/protocol.cpp" "src/firmware/CMakeFiles/ps3_firmware.dir/protocol.cpp.o" "gcc" "src/firmware/CMakeFiles/ps3_firmware.dir/protocol.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analog/CMakeFiles/ps3_analog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ps3_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dut/CMakeFiles/ps3_dut.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/ps3_transport.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
