file(REMOVE_RECURSE
  "CMakeFiles/ps3_firmware.dir/display.cpp.o"
  "CMakeFiles/ps3_firmware.dir/display.cpp.o.d"
  "CMakeFiles/ps3_firmware.dir/eeprom.cpp.o"
  "CMakeFiles/ps3_firmware.dir/eeprom.cpp.o.d"
  "CMakeFiles/ps3_firmware.dir/firmware.cpp.o"
  "CMakeFiles/ps3_firmware.dir/firmware.cpp.o.d"
  "CMakeFiles/ps3_firmware.dir/font5x7.cpp.o"
  "CMakeFiles/ps3_firmware.dir/font5x7.cpp.o.d"
  "CMakeFiles/ps3_firmware.dir/protocol.cpp.o"
  "CMakeFiles/ps3_firmware.dir/protocol.cpp.o.d"
  "libps3_firmware.a"
  "libps3_firmware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps3_firmware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
