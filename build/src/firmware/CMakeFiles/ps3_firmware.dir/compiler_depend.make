# Empty compiler generated dependencies file for ps3_firmware.
# This may be replaced when dependencies are built.
