/**
 * @file
 * FleetServer integration suite: the epoll event loop serving a
 * SensorRegistry to PS3N v2 multiplexed clients and v1.x
 * single-stream clients at the same time.
 *
 * Covers the v2 session lifecycle (list, subscribe, records,
 * credit flow control, unsubscribe, markers), the subscribe
 * rejection matrix (unknown sensor, stream-id collision, bad tier,
 * stream limit, control stream), hostile-command handling, the
 * v1.0/v1.1/v1.2 negotiation matrix against the same port, shm://
 * handover, graceful drain, and the idle guarantee (no event-loop
 * wakeups without work — the observable for the timerfd/doorbell
 * scheduling).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/errors.hpp"
#include "host/dump_writer.hpp"
#include "net/fleet_client.hpp"
#include "net/fleet_server.hpp"
#include "net/net_power_sensor.hpp"
#include "net/registry.hpp"
#include "net/wire.hpp"
#include "net/wire_v2.hpp"
#include "transport/socket_device.hpp"

namespace ps3 {
namespace {

using transport::Endpoint;
using transport::RingOverflow;
using Kind = net::FleetClient::Event::Kind;

std::string
socketPath()
{
    static std::atomic<int> counter{0};
    return "/tmp/ps3_fleet_test_" + std::to_string(::getpid()) + "_"
           + std::to_string(counter.fetch_add(1)) + ".sock";
}

firmware::DeviceConfig
testConfig()
{
    firmware::DeviceConfig config{};
    config[0].inUse = true;
    config[0].name = "12V-10A";
    config[0].vref = 1.65;
    config[0].slope = 0.11;
    return config;
}

/** Record with a per-sensor signature in current[0]. */
host::DumpRecord
sensorRecord(std::uint16_t sensor, double time)
{
    host::DumpRecord record;
    record.time = time;
    record.presentMask = 0x01;
    record.voltage[0] = 12.0;
    record.current[0] = 1.0 + sensor;
    return record;
}

/** A registry of `n` publish-driven sensors. */
std::unique_ptr<net::SensorRegistry>
makeRegistry(std::size_t n, std::size_t ring_capacity = 1024)
{
    auto registry = std::make_unique<net::SensorRegistry>();
    for (std::size_t i = 0; i < n; ++i)
        registry->addSimulated("fleet-" + std::to_string(i),
                               testConfig(), "fw-test", 20000.0,
                               ring_capacity);
    return registry;
}

/** Poll until an event of `kind` arrives; fail the test otherwise. */
net::FleetClient::Event
awaitEvent(net::FleetClient &client, Kind kind,
           double timeout_seconds = 5.0)
{
    const auto deadline =
        std::chrono::steady_clock::now()
        + std::chrono::duration<double>(timeout_seconds);
    net::FleetClient::Event event;
    while (std::chrono::steady_clock::now() < deadline) {
        if (!client.poll(event, 0.1))
            continue;
        if (event.kind == kind)
            return event;
    }
    ADD_FAILURE() << "no event of kind "
                  << static_cast<int>(kind) << " within "
                  << timeout_seconds << " s";
    return event;
}

/** Subscribe and require the Ok ack. */
void
subscribeOk(net::FleetClient &client, std::uint16_t stream_id,
            std::uint16_t sensor_id,
            host::Tier tier = host::Tier::Raw,
            RingOverflow overflow = RingOverflow::Block,
            std::uint32_t credit = net::kUnlimitedCredit)
{
    client.subscribe(stream_id, sensor_id, tier, overflow, credit);
    const auto ack = awaitEvent(client, Kind::SubscribeAck);
    ASSERT_EQ(ack.ack.status, net::SubscribeStatus::Ok);
    ASSERT_EQ(ack.ack.streamId, stream_id);
    ASSERT_EQ(ack.ack.sensorId, sensor_id);
    ASSERT_EQ(ack.ack.sampleRateHz, 20000.0);
}

/** Drain Records events on one stream until `count` arrive. */
std::vector<host::DumpRecord>
awaitRecords(net::FleetClient &client, std::uint16_t stream_id,
             std::size_t count, double timeout_seconds = 5.0)
{
    const auto deadline =
        std::chrono::steady_clock::now()
        + std::chrono::duration<double>(timeout_seconds);
    std::vector<host::DumpRecord> records;
    net::FleetClient::Event event;
    while (records.size() < count
           && std::chrono::steady_clock::now() < deadline) {
        if (!client.poll(event, 0.1))
            continue;
        if (event.kind == Kind::Records
            && event.streamId == stream_id)
            records.insert(records.end(), event.records.begin(),
                           event.records.end());
    }
    EXPECT_EQ(records.size(), count);
    return records;
}

// ----- v2 session lifecycle ----------------------------------------------

TEST(FleetV2, ListSubscribeAndStreamOneSensor)
{
    auto registry = makeRegistry(3);
    net::FleetServer server(*registry);
    const auto endpoint =
        server.listen(Endpoint::parse("unix://" + socketPath()));

    auto client = net::FleetClient::connect(endpoint, 5.0);
    EXPECT_EQ(client->sensorCount(), 3);

    client->requestSensorList();
    const auto listing = awaitEvent(*client, Kind::Sensors);
    ASSERT_EQ(listing.sensors.size(), 3u);
    EXPECT_EQ(listing.sensors[1].id, 1);
    EXPECT_EQ(listing.sensors[1].name, "fleet-1");
    EXPECT_EQ(listing.sensors[1].sampleRateHz, 20000.0);

    subscribeOk(*client, 7, 1);
    for (int i = 0; i < 50; ++i)
        registry->publish(1, sensorRecord(1, 50e-6 * i));
    // Unsubscribed sensors must not leak onto the connection.
    registry->publish(0, sensorRecord(0, 0.0));
    registry->publish(2, sensorRecord(2, 0.0));

    const auto records = awaitRecords(*client, 7, 50);
    ASSERT_EQ(records.size(), 50u);
    EXPECT_EQ(records.front().current[0], 2.0); // sensor 1's mark
    EXPECT_EQ(records.back().time, 50e-6 * 49);
    EXPECT_EQ(client->gapRecords(), 0u);

    registry->stopAll();
    server.stop();
}

TEST(FleetV2, MultiplexedStreamsKeepTheirIdentity)
{
    auto registry = makeRegistry(3);
    net::FleetServer server(*registry);
    const auto endpoint =
        server.listen(Endpoint::parse("unix://" + socketPath()));

    auto client = net::FleetClient::connect(endpoint, 5.0);
    subscribeOk(*client, 1, 0);
    subscribeOk(*client, 2, 1);
    subscribeOk(*client, 3, 2);

    // Distinct record counts per sensor expose any crosstalk.
    for (int i = 0; i < 10; ++i)
        registry->publish(0, sensorRecord(0, 50e-6 * i));
    for (int i = 0; i < 20; ++i)
        registry->publish(1, sensorRecord(1, 50e-6 * i));
    for (int i = 0; i < 30; ++i)
        registry->publish(2, sensorRecord(2, 50e-6 * i));

    std::size_t got[3] = {0, 0, 0};
    const auto deadline = std::chrono::steady_clock::now()
                          + std::chrono::seconds(5);
    net::FleetClient::Event event;
    while ((got[0] < 10 || got[1] < 20 || got[2] < 30)
           && std::chrono::steady_clock::now() < deadline) {
        if (!client->poll(event, 0.1)
            || event.kind != Kind::Records)
            continue;
        ASSERT_GE(event.streamId, 1);
        ASSERT_LE(event.streamId, 3);
        for (const auto &record : event.records)
            EXPECT_EQ(record.current[0],
                      1.0 + (event.streamId - 1));
        got[event.streamId - 1] += event.records.size();
    }
    EXPECT_EQ(got[0], 10u);
    EXPECT_EQ(got[1], 20u);
    EXPECT_EQ(got[2], 30u);
    EXPECT_EQ(client->gapRecords(), 0u);

    registry->stopAll();
    server.stop();
}

TEST(FleetV2, CreditStallsAndResumesLosslessly)
{
    auto registry = makeRegistry(1);
    net::FleetServer server(*registry);
    const auto endpoint =
        server.listen(Endpoint::parse("unix://" + socketPath()));

    auto client = net::FleetClient::connect(endpoint, 5.0);
    subscribeOk(*client, 1, 0, host::Tier::Raw, RingOverflow::Block,
                5);

    for (int i = 0; i < 12; ++i)
        registry->publish(0, sensorRecord(0, 50e-6 * i));

    // Exactly the credited 5 records arrive, then the stream stalls.
    auto records = awaitRecords(*client, 1, 5);
    net::FleetClient::Event event;
    while (client->poll(event, 0.3))
        ASSERT_NE(event.kind, Kind::Records)
            << "server sent past the credit";

    client->addCredit(1, 7);
    auto more = awaitRecords(*client, 1, 7);
    records.insert(records.end(), more.begin(), more.end());
    ASSERT_EQ(records.size(), 12u);
    for (int i = 0; i < 12; ++i)
        EXPECT_EQ(records[i].time, 50e-6 * i); // in order, no loss
    EXPECT_EQ(client->gapRecords(), 0u);

    registry->stopAll();
    server.stop();
}

TEST(FleetV2, CreditAfterBlockLapEndsOnlyThatStream)
{
    auto registry = makeRegistry(1, 16);
    net::FleetServer server(*registry);
    const auto endpoint =
        server.listen(Endpoint::parse("unix://" + socketPath()));

    auto client = net::FleetClient::connect(endpoint, 5.0);
    subscribeOk(*client, 1, 0, host::Tier::Raw, RingOverflow::Block,
                2);

    // Exhaust the credit, then lap the stalled cursor: a Block
    // stream that lost records must end, not lie by omission.
    for (int i = 0; i < 2; ++i)
        registry->publish(0, sensorRecord(0, 50e-6 * i));
    awaitRecords(*client, 1, 2);
    for (int i = 0; i < 40; ++i)
        registry->publish(0, sensorRecord(0, 50e-6 * (2 + i)));

    // The grant makes the server's pump detect the lap and remove
    // the stream mid-credit-handling — the connection (and the
    // freed stream's memory) must survive that.
    client->addCredit(1, 10);
    const auto eos = awaitEvent(*client, Kind::StreamEnd);
    EXPECT_EQ(eos.streamId, 1);

    // The control plane and a fresh stream still work.
    client->requestSensorList();
    const auto listing = awaitEvent(*client, Kind::Sensors);
    EXPECT_EQ(listing.sensors.size(), 1u);
    subscribeOk(*client, 2, 0);
    registry->publish(0, sensorRecord(0, 0.0));
    awaitRecords(*client, 2, 1);

    registry->stopAll();
    server.stop();
}

TEST(FleetV2, ControlFloodWithoutReadingGetsDropped)
{
    auto registry = makeRegistry(1);
    net::FleetServer::Options options;
    options.outBufferHighWater = 64u << 10;
    net::FleetServer server(*registry, options);
    const auto endpoint =
        server.listen(Endpoint::parse("unix://" + socketPath()));

    auto bystander = net::FleetClient::connect(endpoint, 5.0);
    subscribeOk(*bystander, 1, 0);

    // Control replies bypass stream credit, so a client that floods
    // list-sensors while reading nothing must be dropped once its
    // out buffer passes the hard cap — not grow it without bound.
    {
        auto raw = transport::SocketDevice::connect(endpoint, 5.0);
        const auto hello = net::encodeClientHelloV2();
        raw->write(hello.data(), hello.size());
        std::uint8_t prefix[net::kServerHelloPrefixSize];
        std::size_t got = 0;
        while (got < sizeof prefix)
            got += raw->read(prefix + got, sizeof prefix - got,
                             5.0);
        net::HelloStatus status = net::HelloStatus::Ok;
        const auto payload = net::decodeServerHelloV2Prefix(
            prefix, sizeof prefix, status);
        std::vector<std::uint8_t> body(payload);
        got = 0;
        while (got < payload)
            got += raw->read(body.data() + got, payload - got, 5.0);

        const std::vector<std::uint8_t> burst(
            4096, net::kOpListSensors);
        try {
            // ~4M commands; the server must cut us off long before.
            for (int i = 0; i < 1000 && !raw->closed(); ++i)
                raw->write(burst.data(), burst.size());
        } catch (const DeviceError &) {
            // Server already reset the connection mid-write.
        }
        std::uint8_t sink[4096];
        const auto deadline = std::chrono::steady_clock::now()
                              + std::chrono::seconds(5);
        while (!raw->closed()
               && std::chrono::steady_clock::now() < deadline)
            raw->read(sink, sizeof sink, 0.1);
        EXPECT_TRUE(raw->closed());
    }
    EXPECT_GE(server.subscribersDropped(), 1u);

    // The bystander's stream is unharmed.
    registry->publish(0, sensorRecord(0, 0.0));
    awaitRecords(*bystander, 1, 1);

    registry->stopAll();
    server.stop();
}

TEST(FleetV2, SubscribeRejectionMatrix)
{
    auto registry = makeRegistry(2);
    net::FleetServer::Options options;
    options.maxStreamsPerConnection = 2;
    net::FleetServer server(*registry, options);
    const auto endpoint =
        server.listen(Endpoint::parse("unix://" + socketPath()));

    auto client = net::FleetClient::connect(endpoint, 5.0);

    // Stream 0 is the control stream.
    client->subscribe(0, 0);
    auto ack = awaitEvent(*client, Kind::SubscribeAck);
    EXPECT_EQ(ack.ack.status, net::SubscribeStatus::BadStreamId);

    // Unknown sensor.
    client->subscribe(1, 99);
    ack = awaitEvent(*client, Kind::SubscribeAck);
    EXPECT_EQ(ack.ack.status, net::SubscribeStatus::UnknownSensor);

    // Tier byte above kMaxTierValue.
    client->subscribe(1, 0, static_cast<host::Tier>(9));
    ack = awaitEvent(*client, Kind::SubscribeAck);
    EXPECT_EQ(ack.ack.status, net::SubscribeStatus::BadTier);
    EXPECT_EQ(ack.ack.sampleRateHz, 0.0); // rejects carry no rate

    // Stream-id collision with a live stream.
    subscribeOk(*client, 1, 0);
    client->subscribe(1, 1);
    ack = awaitEvent(*client, Kind::SubscribeAck);
    EXPECT_EQ(ack.ack.status, net::SubscribeStatus::StreamIdInUse);

    // Per-connection stream limit.
    subscribeOk(*client, 2, 1);
    client->subscribe(3, 0);
    ack = awaitEvent(*client, Kind::SubscribeAck);
    EXPECT_EQ(ack.ack.status, net::SubscribeStatus::TooManyStreams);

    // None of that hurt the live streams.
    registry->publish(0, sensorRecord(0, 0.0));
    awaitRecords(*client, 1, 1);

    registry->stopAll();
    server.stop();
}

TEST(FleetV2, UnsubscribeEndsTheStreamWithEos)
{
    auto registry = makeRegistry(2);
    net::FleetServer server(*registry);
    const auto endpoint =
        server.listen(Endpoint::parse("unix://" + socketPath()));

    auto client = net::FleetClient::connect(endpoint, 5.0);
    subscribeOk(*client, 1, 0);
    subscribeOk(*client, 2, 1);

    registry->publish(0, sensorRecord(0, 0.0));
    awaitRecords(*client, 1, 1);

    client->unsubscribe(1);
    const auto eos = awaitEvent(*client, Kind::StreamEnd);
    EXPECT_EQ(eos.streamId, 1);

    // The closed stream is gone; the sibling stream still works,
    // and the freed id can be subscribed again.
    registry->publish(1, sensorRecord(1, 0.0));
    awaitRecords(*client, 2, 1);
    subscribeOk(*client, 1, 1);

    registry->stopAll();
    server.stop();
}

TEST(FleetV2, MarkersRouteToTheAddressedSensor)
{
    auto registry = makeRegistry(3);
    net::FleetServer server(*registry);
    const auto endpoint =
        server.listen(Endpoint::parse("unix://" + socketPath()));

    auto client = net::FleetClient::connect(endpoint, 5.0);
    client->mark(1, 'Q');
    const auto deadline = std::chrono::steady_clock::now()
                          + std::chrono::seconds(5);
    while (server.markerRequests() < 1
           && std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(server.markerRequests(), 1u);
    EXPECT_EQ(registry->entry(1).markerRequests.load(), 1u);
    EXPECT_EQ(registry->entry(0).markerRequests.load(), 0u);

    // A marker for a nonexistent sensor is dropped, not fatal.
    client->mark(99, 'X');
    client->mark(2, 'R');
    while (server.markerRequests() < 2
           && std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(registry->entry(2).markerRequests.load(), 1u);

    registry->stopAll();
    server.stop();
}

TEST(FleetV2, MarkedRecordsReachOnlyTheirSensorsSubscribers)
{
    auto registry = makeRegistry(2);
    net::FleetServer server(*registry);
    const auto endpoint =
        server.listen(Endpoint::parse("unix://" + socketPath()));

    // Two independent connections: one watches the marked sensor,
    // the other a sibling sensor. A marker must ride downstream
    // folded into its sample record ('M' prefix, see net/wire.hpp)
    // on the marked sensor's streams only.
    auto watcher = net::FleetClient::connect(endpoint, 5.0);
    auto bystander = net::FleetClient::connect(endpoint, 5.0);
    subscribeOk(*watcher, 1, 1);
    subscribeOk(*bystander, 1, 0);

    auto marked = sensorRecord(1, 0.0);
    marked.marker = true;
    marked.markerChar = 'R'; // region begin, energy attribution
    registry->publish(1, marked);
    registry->publish(1, sensorRecord(1, 50e-6));
    registry->publish(0, sensorRecord(0, 0.0));
    registry->publish(0, sensorRecord(0, 50e-6));

    const auto watched = awaitRecords(*watcher, 1, 2);
    ASSERT_EQ(watched.size(), 2u);
    EXPECT_TRUE(watched[0].marker);
    EXPECT_EQ(watched[0].markerChar, 'R');
    EXPECT_EQ(watched[0].time, 0.0);
    EXPECT_FALSE(watched[1].marker);

    const auto other = awaitRecords(*bystander, 1, 2);
    ASSERT_EQ(other.size(), 2u);
    for (const auto &record : other) {
        EXPECT_FALSE(record.marker);
        EXPECT_EQ(record.current[0], 1.0); // sensor 0's signature
    }

    registry->stopAll();
    server.stop();
}

TEST(FleetV2, HeartbeatsFlowOnIdleStreams)
{
    auto registry = makeRegistry(1);
    net::FleetServer::Options options;
    options.heartbeatInterval = 0.1;
    options.tickInterval = 0.05;
    net::FleetServer server(*registry, options);
    const auto endpoint =
        server.listen(Endpoint::parse("unix://" + socketPath()));

    auto client = net::FleetClient::connect(endpoint, 5.0);
    subscribeOk(*client, 1, 0);
    registry->publish(0, sensorRecord(0, 0.0));
    awaitRecords(*client, 1, 1);

    const auto beat = awaitEvent(*client, Kind::Heartbeat, 3.0);
    EXPECT_EQ(beat.streamId, 1);
    EXPECT_EQ(beat.firstSeq, 1u); // pins the stream position
    EXPECT_GE(server.heartbeatsSent(), 1u);
    EXPECT_EQ(client->gapRecords(), 0u);

    registry->stopAll();
    server.stop();
}

TEST(FleetV2, HostileCommandCostsOnlyThatConnection)
{
    auto registry = makeRegistry(1);
    net::FleetServer server(*registry);
    const auto endpoint =
        server.listen(Endpoint::parse("unix://" + socketPath()));

    auto bystander = net::FleetClient::connect(endpoint, 5.0);
    subscribeOk(*bystander, 1, 0);

    // An unknown op byte is unrecoverable (commands are fixed-size,
    // so framing is lost): the server must kick this connection.
    const std::uint8_t junk[] = {0x7E};
    {
        auto raw = transport::SocketDevice::connect(endpoint, 5.0);
        const auto hello = net::encodeClientHelloV2();
        raw->write(hello.data(), hello.size());
        std::uint8_t prefix[net::kServerHelloPrefixSize];
        std::size_t got = 0;
        while (got < sizeof prefix)
            got += raw->read(prefix + got, sizeof prefix - got,
                             5.0);
        net::HelloStatus status = net::HelloStatus::Ok;
        const auto payload = net::decodeServerHelloV2Prefix(
            prefix, sizeof prefix, status);
        std::vector<std::uint8_t> body(payload);
        got = 0;
        while (got < payload)
            got += raw->read(body.data() + got, payload - got, 5.0);
        raw->write(junk, sizeof junk);
        // The server closes on us: reads drain to EOF.
        std::uint8_t sink[64];
        const auto deadline = std::chrono::steady_clock::now()
                              + std::chrono::seconds(5);
        while (!raw->closed()
               && std::chrono::steady_clock::now() < deadline)
            raw->read(sink, sizeof sink, 0.1);
        EXPECT_TRUE(raw->closed());
    }
    EXPECT_GE(server.protocolErrors(), 1u);

    // The bystander's stream is unharmed.
    registry->publish(0, sensorRecord(0, 0.0));
    awaitRecords(*bystander, 1, 1);

    registry->stopAll();
    server.stop();
}

TEST(FleetV2, ServerFullRefusesTheHello)
{
    auto registry = makeRegistry(1);
    net::FleetServer::Options options;
    options.maxSubscribers = 1;
    net::FleetServer server(*registry, options);
    const auto endpoint =
        server.listen(Endpoint::parse("unix://" + socketPath()));

    auto first = net::FleetClient::connect(endpoint, 5.0);
    const auto deadline = std::chrono::steady_clock::now()
                          + std::chrono::seconds(5);
    while (server.subscriberCount() < 1
           && std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_THROW(net::FleetClient::connect(endpoint, 5.0),
                 DeviceError);

    registry->stopAll();
    server.stop();
}

TEST(FleetV2, DrainDeliversTailThenEosOnEveryStream)
{
    auto registry = makeRegistry(2);
    net::FleetServer server(*registry);
    const auto endpoint =
        server.listen(Endpoint::parse("unix://" + socketPath()));

    auto client = net::FleetClient::connect(endpoint, 5.0);
    subscribeOk(*client, 1, 0);
    subscribeOk(*client, 2, 1);
    for (int i = 0; i < 100; ++i) {
        registry->publish(0, sensorRecord(0, 50e-6 * i));
        registry->publish(1, sensorRecord(1, 50e-6 * i));
    }

    registry->stopAll();
    std::thread stopper([&] { server.stop(); });

    std::size_t records[2] = {0, 0};
    bool eos[2] = {false, false};
    bool closed = false;
    const auto deadline = std::chrono::steady_clock::now()
                          + std::chrono::seconds(10);
    net::FleetClient::Event event;
    while (!closed
           && std::chrono::steady_clock::now() < deadline) {
        if (!client->poll(event, 0.1))
            continue;
        switch (event.kind) {
        case Kind::Records:
            ASSERT_GE(event.streamId, 1);
            ASSERT_LE(event.streamId, 2);
            records[event.streamId - 1] += event.records.size();
            break;
        case Kind::StreamEnd:
            if (event.streamId >= 1 && event.streamId <= 2)
                eos[event.streamId - 1] = true;
            break;
        case Kind::ConnectionClosed:
            closed = true;
            break;
        default:
            break;
        }
    }
    stopper.join();

    // Every published record arrived before its stream's EOS.
    EXPECT_EQ(records[0], 100u);
    EXPECT_EQ(records[1], 100u);
    EXPECT_TRUE(eos[0]);
    EXPECT_TRUE(eos[1]);
    EXPECT_TRUE(closed);
    EXPECT_EQ(client->gapRecords(), 0u);
    EXPECT_EQ(server.recordsDropped(), 0u);
}

// ----- v1 compatibility on the same port ---------------------------------

TEST(FleetV1Compat, NetPowerSensorStreamsSensorZero)
{
    auto registry = makeRegistry(2);
    net::FleetServer server(*registry);
    const auto endpoint =
        server.listen(Endpoint::parse("unix://" + socketPath()));

    net::NetPowerSensor client(endpoint);
    EXPECT_EQ(client.firmwareVersion(), "fw-test");

    for (int i = 0; i < 200; ++i)
        registry->publish(0, sensorRecord(0, 50e-6 * i));
    // Sensor 1 must not bleed into a v1 session.
    registry->publish(1, sensorRecord(1, 0.0));

    const auto deadline = std::chrono::steady_clock::now()
                          + std::chrono::seconds(5);
    while (client.recordsReceived() < 200
           && std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(client.recordsReceived(), 200u);

    // Upstream markers land on entry 0.
    client.mark('M');
    while (server.markerRequests() < 1
           && std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(registry->entry(0).markerRequests.load(), 1u);

    registry->stopAll();
    server.stop();
    while (!client.deviceGone())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(client.recordsReceived(), 200u);
}

TEST(FleetV1Compat, NegotiationMatrixAnswersEveryMinor)
{
    auto registry = makeRegistry(1);
    net::FleetServer server(*registry);
    const auto endpoint =
        server.listen(Endpoint::parse("unix://" + socketPath()));

    for (std::uint8_t minor : {0, 1, 2}) {
        net::ClientHello hello;
        hello.minor = minor;
        auto socket = transport::SocketDevice::connect(endpoint, 5.0);
        const auto bytes = hello.encode();
        socket->write(bytes.data(), bytes.size());

        std::uint8_t prefix[net::kServerHelloPrefixSize];
        std::size_t got = 0;
        while (got < sizeof prefix)
            got += socket->read(prefix + got, sizeof prefix - got,
                                5.0);
        net::ServerHello reply;
        const std::size_t payload_len = net::ServerHello::decodePrefix(
            prefix, sizeof prefix, reply);
        std::vector<std::uint8_t> payload(payload_len);
        got = 0;
        while (got < payload_len)
            got += socket->read(payload.data() + got,
                                payload_len - got, 5.0);
        reply.decodePayload(payload.data(), payload.size());

        EXPECT_EQ(reply.status, net::HelloStatus::Ok);
        // The reply advertises the server's highest minor; the
        // session then speaks min(client, server) — v1.0 clients
        // get sequence-free framing, v1.1+ sequenced batches (the
        // framing half is checked by V10SessionStreams... below).
        EXPECT_EQ(reply.minor, net::kProtocolMinor);
        EXPECT_EQ(reply.firmwareVersion, "fw-test");
        EXPECT_EQ(reply.sampleRateHz, 20000.0);
    }

    registry->stopAll();
    server.stop();
}

TEST(FleetV1Compat, V10SessionStreamsSequenceFreeBatches)
{
    auto registry = makeRegistry(1);
    net::FleetServer server(*registry);
    const auto endpoint =
        server.listen(Endpoint::parse("unix://" + socketPath()));

    net::ClientHello hello;
    hello.minor = 0;
    auto socket = transport::SocketDevice::connect(endpoint, 5.0);
    const auto bytes = hello.encode();
    socket->write(bytes.data(), bytes.size());
    std::uint8_t prefix[net::kServerHelloPrefixSize];
    std::size_t got = 0;
    while (got < sizeof prefix)
        got += socket->read(prefix + got, sizeof prefix - got, 5.0);
    net::ServerHello reply;
    const std::size_t payload_len =
        net::ServerHello::decodePrefix(prefix, sizeof prefix, reply);
    std::vector<std::uint8_t> payload(payload_len);
    got = 0;
    while (got < payload_len)
        got += socket->read(payload.data() + got, payload_len - got,
                            5.0);
    reply.decodePayload(payload.data(), payload.size());
    ASSERT_EQ(reply.status, net::HelloStatus::Ok);

    for (int i = 0; i < 5; ++i)
        registry->publish(0, sensorRecord(0, 50e-6 * i));

    // v1.0 framing: u32 length, then records — no sequence header,
    // no heartbeats, ever.
    std::uint8_t head[4];
    got = 0;
    while (got < sizeof head)
        got += socket->read(head + got, sizeof head - got, 5.0);
    const std::uint32_t len = head[0] | (head[1] << 8)
                              | (head[2] << 16)
                              | (std::uint32_t(head[3]) << 24);
    ASSERT_GT(len, 0u);
    ASSERT_LE(len, net::kMaxBatchBytes);
    std::vector<std::uint8_t> batch(len);
    got = 0;
    while (got < len)
        got += socket->read(batch.data() + got, len - got, 5.0);
    // The payload starts directly with a record tag, not a seq.
    EXPECT_EQ(batch[0], 'S');

    registry->stopAll();
    server.stop();
}

TEST(FleetV1Compat, TieredSubscriberGetsBuckets)
{
    auto registry = makeRegistry(1);
    net::FleetServer server(*registry);
    const auto endpoint =
        server.listen(Endpoint::parse("unix://" + socketPath()));

    net::NetPowerSensor::Options options;
    options.tier = host::Tier::Hz1000;
    net::NetPowerSensor client(endpoint, options);

    // 3 full 1 kHz buckets at 20 kHz = 60 records, plus change.
    for (int i = 0; i < 70; ++i)
        registry->publish(0, sensorRecord(0, 50e-6 * i));

    const auto deadline = std::chrono::steady_clock::now()
                          + std::chrono::seconds(5);
    while (client.bucketsReceived() < 3
           && std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_GE(client.bucketsReceived(), 3u);

    registry->stopAll();
    server.stop();
}

TEST(FleetV1Compat, ShmHandoverStreamsThroughTheMappedRing)
{
    auto registry = makeRegistry(1);
    net::FleetServer server(*registry);
    const std::string path = socketPath();
    const auto endpoint =
        server.listen(Endpoint::parse("shm://" + path));

    net::NetPowerSensor client(endpoint);
    for (int i = 0; i < 500; ++i)
        registry->publish(0, sensorRecord(0, 50e-6 * i));
    const auto deadline = std::chrono::steady_clock::now()
                          + std::chrono::seconds(5);
    while (client.recordsReceived() < 500
           && std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(client.recordsReceived(), 500u);

    // A v2 hello has no mapped-ring equivalent: the shm control
    // socket refuses it rather than leaving a half-open session.
    EXPECT_THROW(net::FleetClient::connect(endpoint, 5.0),
                 DeviceError);

    registry->stopAll();
    server.stop();
    while (!client.deviceGone())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

// ----- scheduling: the idle guarantee ------------------------------------

TEST(FleetIdle, UnwatchedSensorsCostNoWakeups)
{
    auto registry = makeRegistry(4);
    net::FleetServer server(*registry);
    server.listen(
        Endpoint::parse("unix://" + socketPath()));

    // Let the loop finish setting up, then baseline.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const std::uint64_t baseline = server.loopWakeups();

    // A publish storm into sensors nobody watches: the doorbells
    // are unarmed, the timer is disarmed (no connections) — the
    // loop must sleep through all of it.
    for (int i = 0; i < 1000; ++i)
        registry->publish(i % 4, sensorRecord(0, 50e-6 * i));
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    EXPECT_EQ(server.loopWakeups(), baseline);

    registry->stopAll();
    server.stop();
}

TEST(FleetIdle, TimerDisarmsAfterTheLastConnection)
{
    auto registry = makeRegistry(1);
    net::FleetServer server(*registry);
    const auto endpoint =
        server.listen(Endpoint::parse("unix://" + socketPath()));

    {
        auto client = net::FleetClient::connect(endpoint, 5.0);
        subscribeOk(*client, 1, 0);
        registry->publish(0, sensorRecord(0, 0.0));
        awaitRecords(*client, 1, 1);
    } // client disconnects here

    const auto deadline = std::chrono::steady_clock::now()
                          + std::chrono::seconds(5);
    while (server.subscriberCount() > 0
           && std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(server.subscriberCount(), 0u);

    // Allow the close to settle, then the loop must go dark: no
    // ticks (timer disarmed), no doorbells (no subscribers).
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    const std::uint64_t baseline = server.loopWakeups();
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    EXPECT_LE(server.loopWakeups() - baseline, 1u);

    registry->stopAll();
    server.stop();
}

// ----- listener contract -------------------------------------------------

TEST(FleetListen, LiveEndpointRaisesAddressInUse)
{
    auto registry = makeRegistry(1);
    net::FleetServer server(*registry);
    const std::string path = socketPath();
    server.listen(Endpoint::parse("unix://" + path));

    auto second = makeRegistry(1);
    net::FleetServer competitor(*second);
    try {
        competitor.listen(Endpoint::parse("unix://" + path));
        FAIL() << "second bind on a live endpoint must throw";
    } catch (const AddressInUseError &e) {
        EXPECT_NE(std::string(e.what()).find("already in use"),
                  std::string::npos);
    }

    second->stopAll();
    competitor.stop();
    registry->stopAll();
    server.stop();
}

} // namespace
} // namespace ps3
