/**
 * @file
 * Robustness tests: the firmware command handler and the host parser
 * must survive arbitrary byte sequences without crashing, hanging,
 * or corrupting state (a hostile or buggy host must not brick the
 * device; line noise must not wedge the host).
 */

#include <gtest/gtest.h>

#include "analog/sensor_module_spec.hpp"
#include "common/rng.hpp"
#include "dut/loads.hpp"
#include "firmware/firmware.hpp"
#include "host/stream_parser.hpp"

namespace ps3 {
namespace {

std::unique_ptr<firmware::Firmware>
makeFirmware()
{
    auto fw = std::make_unique<firmware::Firmware>();
    auto load = std::make_shared<dut::ConstantCurrentLoad>(2.0, 12.0);
    auto supply = std::make_shared<dut::SupplyModel>(12.0);
    fw->attachModule(0, firmware::makeModule(
                            analog::modules::slot12V10A(), load, 0,
                            supply, 1));
    return fw;
}

/** Fuzz the firmware with random host bytes across many seeds. */
class FirmwareFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FirmwareFuzz, RandomHostBytesNeverBreakTheDevice)
{
    auto fw = makeFirmware();
    Rng rng(GetParam());

    std::uint8_t buffer[512];
    for (int round = 0; round < 200; ++round) {
        // Random command garbage in random chunk sizes.
        const std::size_t len = rng.uniformInt(1, 64);
        std::uint8_t junk[64];
        for (std::size_t i = 0; i < len; ++i)
            junk[i] = static_cast<std::uint8_t>(
                rng.uniformInt(0, 255));
        fw->hostWrite(junk, len);

        // The junk may have left the device awaiting a multi-byte
        // argument (a 'W' byte expects a whole config blob). A host
        // resynchronises the command channel by flushing more than
        // one blob's worth of invalid command bytes: any pending
        // argument is completed (and NACKed), then each 0xFF is an
        // unknown command.
        std::uint8_t flush[firmware::kConfigBlobSize + 1];
        std::fill(std::begin(flush), std::end(flush),
                  std::uint8_t{0xFF});
        fw->hostWrite(flush, sizeof(flush));
        // The junk may also have started streaming: stop it before
        // draining, or the drain never ends.
        const std::uint8_t stop_cmd =
            static_cast<std::uint8_t>(firmware::Command::StopStream);
        fw->hostWrite(&stop_cmd, 1);
        while (fw->produce(buffer, sizeof(buffer)) != 0) {
        }

        // The device must now produce data on demand...
        const std::uint8_t start =
            static_cast<std::uint8_t>(firmware::Command::StartStream);
        fw->hostWrite(&start, 1);
        ASSERT_GT(fw->produce(buffer, sizeof(buffer)), 0u);
        const std::uint8_t stop =
            static_cast<std::uint8_t>(firmware::Command::StopStream);
        fw->hostWrite(&stop, 1);
        // ...and drain whatever remains without hanging.
        while (fw->produce(buffer, sizeof(buffer)) != 0) {
        }
    }

    // After all the garbage, a clean reboot restores a usable
    // device with its EEPROM intact.
    const std::uint8_t reboot =
        static_cast<std::uint8_t>(firmware::Command::Reboot);
    fw->hostWrite(&reboot, 1);
    while (fw->produce(buffer, sizeof(buffer)) != 0) {
    }
    EXPECT_EQ(fw->eeprom().loadChannel(0).name, "12V-10A");
}

INSTANTIATE_TEST_SUITE_P(Seeds, FirmwareFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u,
                                           7u, 8u));

/** Fuzz the host parser with pure noise across many seeds. */
class ParserFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ParserFuzz, PureNoiseNeverCrashesOrEmitsNonsense)
{
    Rng rng(GetParam());
    unsigned sets = 0;
    double last_time = -1.0;
    host::StreamParser parser([&](const host::FrameSet &set) {
        ++sets;
        // Whatever comes out must satisfy the basic contract.
        EXPECT_GT(set.deviceTime, last_time);
        last_time = set.deviceTime;
        for (unsigned ch = 0; ch < firmware::kNumChannels; ++ch) {
            if (set.valid[ch])
                EXPECT_LT(set.level[ch], 1024);
        }
    });

    std::uint8_t noise[4096];
    for (int round = 0; round < 50; ++round) {
        for (auto &byte : noise)
            byte = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
        parser.feed(noise, sizeof(noise));
    }
    // Random bytes can accidentally form frames; that is fine — the
    // point is no crash and a sane time axis.
    EXPECT_GT(parser.resyncByteCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Values(11u, 22u, 33u, 44u));

TEST(FirmwareFuzzEdge, TruncatedConfigBlobThenRecovery)
{
    auto fw = makeFirmware();
    // Start a config write but only send half the blob...
    const std::uint8_t write_cmd =
        static_cast<std::uint8_t>(firmware::Command::WriteConfig);
    fw->hostWrite(&write_cmd, 1);
    const auto blob = firmware::serializeConfig(fw->eeprom().load());
    fw->hostWrite(blob.data(), blob.size() / 2);

    // ...then recover the way a host must: complete the pending
    // blob with filler (any command byte sent now, including reboot,
    // is argument data by design). The bad checksum is NACKed and
    // the EEPROM stays untouched.
    std::vector<std::uint8_t> filler(firmware::kConfigBlobSize, 0xFF);
    fw->hostWrite(filler.data(), filler.size());
    std::uint8_t buffer[256];
    std::size_t drained = 0;
    std::size_t got_nack;
    while ((got_nack = fw->produce(buffer, sizeof(buffer))) != 0)
        drained += got_nack;
    EXPECT_GE(drained, 1u); // the NACK (plus unknown-command NACKs)
    EXPECT_EQ(fw->eeprom().loadChannel(0).name, "12V-10A");

    const std::uint8_t read_cmd =
        static_cast<std::uint8_t>(firmware::Command::ReadConfig);
    fw->hostWrite(&read_cmd, 1);
    std::vector<std::uint8_t> response;
    std::size_t got;
    while ((got = fw->produce(buffer, sizeof(buffer))) != 0)
        response.insert(response.end(), buffer, buffer + got);
    ASSERT_EQ(response.size(), 1 + firmware::kConfigBlobSize);
    EXPECT_EQ(response[0], firmware::kAck);
}

TEST(FirmwareFuzzEdge, MarkerByteEqualToCommandCharIsData)
{
    // 'M' followed by 'M': the second byte is the marker character,
    // not a new command.
    auto fw = makeFirmware();
    const std::uint8_t bytes[] = {'M', 'M', 'S'};
    fw->hostWrite(bytes, 3);
    EXPECT_TRUE(fw->streaming());

    std::uint8_t buffer[4096];
    const std::size_t got = fw->produce(buffer, sizeof(buffer));
    unsigned flagged = 0;
    host::StreamParser parser([&](const host::FrameSet &set) {
        if (set.marker)
            ++flagged;
    });
    parser.feed(buffer, got);
    EXPECT_EQ(flagged, 1u);
}

} // namespace
} // namespace ps3
