/**
 * @file
 * Unit tests for the PMT layer: the unified meter interface, the
 * PowerSensor3 backend, and the vendor-API simulators' artifact
 * models (update rate, averaging window, quantisation, energy
 * counters).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "host/sim_setup.hpp"
#include "pmt/power_meter.hpp"
#include "pmt/vendor_sim.hpp"

namespace ps3::pmt {
namespace {

TEST(PmtMath, JoulesWattsSeconds)
{
    PmtState a{1.0, 100.0, 50.0};
    PmtState b{3.0, 300.0, 70.0};
    EXPECT_DOUBLE_EQ(joules(a, b), 200.0);
    EXPECT_DOUBLE_EQ(seconds(a, b), 2.0);
    EXPECT_DOUBLE_EQ(watts(a, b), 100.0);
    EXPECT_THROW(watts(b, a), UsageError);
}

TEST(PowerSensor3Backend, TracksHostState)
{
    auto rig = host::rigs::labBench(analog::modules::slot12V10A(),
                                    12.0, 5.0);
    auto sensor = rig.connect();
    PowerSensor3Meter meter(*sensor);
    EXPECT_EQ(meter.name(), "PowerSensor3");

    const auto first = meter.read();
    ASSERT_TRUE(sensor->waitForSamples(20000));
    const auto second = meter.read();
    EXPECT_NEAR(watts(first, second), 5.0 * 11.95, 1.0);
    EXPECT_NEAR(second.watts, 5.0 * 11.95, 3.0);
}

TEST(VendorSim, ValidatesConfiguration)
{
    VirtualClock clock;
    VendorMeterConfig config;
    config.updatePeriod = 0.0;
    EXPECT_THROW(SampledVendorMeter(config,
                                    [](double) { return 1.0; },
                                    clock),
                 UsageError);
    VendorMeterConfig ok;
    EXPECT_THROW(SampledVendorMeter(ok, nullptr, clock), UsageError);
}

TEST(VendorSim, HoldsValueBetweenUpdates)
{
    VirtualClock clock;
    VendorMeterConfig config;
    config.updatePeriod = 0.1;
    // Power is a ramp: reported value only changes on the grid.
    SampledVendorMeter meter(config, [](double t) { return t * 100.0; },
                             clock);
    const double v0 = meter.read().watts;
    clock.advance(0.04);
    EXPECT_DOUBLE_EQ(meter.read().watts, v0); // within the period
    clock.advance(0.07);
    EXPECT_GT(meter.read().watts, v0); // crossed a grid point
}

TEST(VendorSim, QuantisesReportedPower)
{
    VirtualClock clock;
    VendorMeterConfig config;
    config.updatePeriod = 0.01;
    config.quantizationWatts = 5.0;
    SampledVendorMeter meter(config, [](double) { return 17.3; },
                             clock);
    EXPECT_DOUBLE_EQ(meter.read().watts, 15.0);
}

TEST(VendorSim, AveragingWindowSmoothsSteps)
{
    VirtualClock clock;
    VendorMeterConfig instant;
    instant.updatePeriod = 0.1;
    VendorMeterConfig averaged = instant;
    averaged.averagingWindow = 1.0;

    // A step at t = 1: 10 W before, 110 W after.
    auto step = [](double t) { return t < 1.0 ? 10.0 : 110.0; };
    SampledVendorMeter fast(instant, step, clock);
    SampledVendorMeter slow(averaged, step, clock);
    fast.read();
    slow.read();

    clock.advance(1.51); // 0.51 s past the step
    const double fast_value = fast.read().watts;
    const double slow_value = slow.read().watts;
    EXPECT_NEAR(fast_value, 110.0, 1e-6);
    // The 1 s boxcar still contains ~half the old level.
    EXPECT_GT(slow_value, 40.0);
    EXPECT_LT(slow_value, 80.0);
}

TEST(VendorSim, SampleHeldEnergyVsExactCounter)
{
    // A pulse misaligned with the 10 Hz grid: the sample-hold energy
    // over-counts it (three grid points sample "high"); the exact
    // counter does not.
    auto pulse = [](double t) {
        return (t > 0.37 && t < 0.63) ? 100.0 : 0.0;
    };
    VirtualClock clock;
    VendorMeterConfig held;
    held.updatePeriod = 0.1;
    VendorMeterConfig exact = held;
    exact.exactEnergyCounter = true;

    SampledVendorMeter meter_held(held, pulse, clock);
    SampledVendorMeter meter_exact(exact, pulse, clock);
    const auto h0 = meter_held.read();
    const auto e0 = meter_exact.read();
    clock.advance(1.0);
    const auto h1 = meter_held.read();
    const auto e1 = meter_exact.read();

    const double true_energy = 100.0 * 0.26;
    EXPECT_NEAR(joules(e0, e1), true_energy, 0.5);
    // The sample-held estimate is off by a grid-alignment artifact.
    EXPECT_GT(std::abs(joules(h0, h1) - true_energy), 2.0);
}

TEST(VendorSim, NvmlFactoryModes)
{
    dut::GpuDutModel gpu(dut::GpuSpec::rtx4000Ada());
    VirtualClock clock;
    auto instant = makeNvmlMeter(gpu, clock, NvmlMode::Instant);
    auto average = makeNvmlMeter(gpu, clock, NvmlMode::Average);
    EXPECT_EQ(instant->name(), "NVML-instant");
    EXPECT_EQ(average->name(), "NVML-average");
    EXPECT_NEAR(instant->read().watts,
                dut::GpuSpec::rtx4000Ada().idlePower, 0.01);
}

TEST(VendorSim, AmdMetersAgreeWithEachOther)
{
    dut::GpuDutModel gpu(dut::GpuSpec::w7700());
    gpu.launchKernel(0.1, 1.0, 150.0);
    VirtualClock clock;
    auto rocm = makeRocmSmiMeter(gpu, clock);
    auto amd = makeAmdSmiMeter(gpu, clock);
    rocm->read();
    amd->read();
    for (int i = 0; i < 50; ++i) {
        clock.advance(0.02);
        EXPECT_NEAR(rocm->read().watts, amd->read().watts, 1e-6);
    }
}

TEST(VendorSim, AmdEnergyCounterTracksTruth)
{
    dut::GpuDutModel gpu(dut::GpuSpec::w7700());
    gpu.launchKernel(0.0, 1.0, 150.0);
    VirtualClock clock;
    auto meter = makeRocmSmiMeter(gpu, clock);
    const auto before = meter->read();
    clock.advance(1.0);
    const auto after = meter->read();

    double truth = 0.0;
    for (double t = 0.0; t < 1.0; t += 1e-4)
        truth += gpu.totalPower(t) * 1e-4;
    EXPECT_NEAR(joules(before, after), truth, 0.01 * truth);
}

TEST(VendorSim, JetsonBuiltinSeesOnlyTheModule)
{
    dut::SocDutModel soc(
        dut::GpuSpec::jetsonAgxOrinModule().tuningVariant(), 4.8);
    soc.module().launchKernel(0.0, 10.0, 40.0);
    VirtualClock clock;
    auto builtin = makeJetsonBuiltinMeter(soc, clock);
    clock.advance(5.0);
    EXPECT_NEAR(builtin->read().watts, 40.0, 0.1);
    EXPECT_NEAR(soc.truePower(5.0), 44.8, 1e-9);
}

} // namespace
} // namespace ps3::pmt
