/**
 * @file
 * Unit tests for the GPU / SoC phase power models.
 */

#include <cmath>
#include <thread>

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "dut/gpu_model.hpp"

namespace ps3::dut {
namespace {

TEST(GpuSpec, FactoriesMatchPaperCards)
{
    const auto nv = GpuSpec::rtx4000Ada();
    EXPECT_EQ(nv.envelope, LaunchEnvelope::StepAndRamp);
    EXPECT_NEAR(nv.launchPower, 95.0, 1.0);
    EXPECT_NEAR(nv.sustainedPower, 120.0, 1.0);
    EXPECT_GT(nv.decayTau, 0.3); // over a second to idle

    const auto amd = GpuSpec::w7700();
    EXPECT_EQ(amd.envelope, LaunchEnvelope::SpikeDropRamp);
    EXPECT_DOUBLE_EQ(amd.powerLimit, 150.0);
    EXPECT_LT(amd.decayTau, nv.decayTau); // faster return to idle

    const auto jetson = GpuSpec::jetsonAgxOrinModule();
    EXPECT_LT(jetson.powerLimit, 100.0);
}

TEST(GpuSpec, TuningVariantLocksClocks)
{
    const auto variant = GpuSpec::rtx4000Ada().tuningVariant();
    EXPECT_EQ(variant.envelope, LaunchEnvelope::Instant);
    EXPECT_DOUBLE_EQ(variant.phaseDipDepth, 0.0);
    EXPECT_LT(variant.decayTau, 0.05);
}

TEST(GpuDutModel, IdleBeforeAnyKernel)
{
    GpuDutModel gpu(GpuSpec::rtx4000Ada());
    EXPECT_DOUBLE_EQ(gpu.totalPower(0.0),
                     GpuSpec::rtx4000Ada().idlePower);
    EXPECT_DOUBLE_EQ(gpu.totalPower(100.0),
                     GpuSpec::rtx4000Ada().idlePower);
}

TEST(GpuDutModel, StepAndRampEnvelope)
{
    const auto spec = GpuSpec::rtx4000Ada();
    GpuDutModel gpu(spec);
    gpu.launchKernel(1.0, 3.0, 120.0);

    EXPECT_DOUBLE_EQ(gpu.totalPower(0.5), spec.idlePower);
    // Right after launch: near the launch power.
    EXPECT_NEAR(gpu.totalPower(1.0 + 1e-4), spec.launchPower, 1.0);
    // One ramp tau in: ~63% of the way to sustained.
    const double expected =
        spec.launchPower
        + (120.0 - spec.launchPower) * (1.0 - std::exp(-1.0));
    EXPECT_NEAR(gpu.totalPower(1.0 + spec.rampTau), expected, 0.5);
    // Late in the kernel: sustained.
    EXPECT_NEAR(gpu.totalPower(3.8), 120.0, 1.5);
}

TEST(GpuDutModel, SpikeDropRampEnvelope)
{
    const auto spec = GpuSpec::w7700();
    GpuDutModel gpu(spec);
    gpu.launchKernel(0.0, 2.0, 150.0);

    // Spike at the limit.
    EXPECT_NEAR(gpu.totalPower(0.01), spec.powerLimit, 1e-9);
    // Drop after the spike.
    EXPECT_NEAR(gpu.totalPower(spec.spikeDuration + 1e-3),
                spec.dropPower, 3.0);
    // Overshoot: at some point power exceeds the sustained level.
    double peak_after_drop = 0.0;
    for (double t = spec.spikeDuration + 0.05; t < 1.0; t += 1e-3)
        peak_after_drop = std::max(peak_after_drop,
                                   gpu.totalPower(t));
    EXPECT_GT(peak_after_drop, 150.0);
    EXPECT_LE(peak_after_drop, 150.0 * 1.04 + 1e-9);
    // Stabilised at the limit.
    EXPECT_NEAR(gpu.totalPower(1.9), 150.0, 2.0);
}

TEST(GpuDutModel, InstantEnvelope)
{
    const auto spec = GpuSpec::rtx4000Ada().tuningVariant();
    GpuDutModel gpu(spec);
    gpu.launchKernel(1.0, 0.01, 80.0);
    EXPECT_NEAR(gpu.totalPower(1.0 + 1e-5), 80.0, 1e-9);
    EXPECT_NEAR(gpu.totalPower(1.009), 80.0, 1e-9);
}

TEST(GpuDutModel, PhaseDipsAppearBetweenPhases)
{
    const auto spec = GpuSpec::rtx4000Ada();
    GpuDutModel gpu(spec);
    gpu.launchKernel(0.0, 2.0, 120.0, /*phases=*/4);

    // Phase period 0.5 s; a dip right after each boundary except
    // the first.
    const double dip = gpu.totalPower(0.5 + spec.phaseDipDuration / 2);
    const double steady = gpu.totalPower(0.5 - 0.01);
    EXPECT_NEAR(steady - dip, spec.phaseDipDepth, 1.0);
    // No dip at the very start.
    EXPECT_NEAR(gpu.totalPower(1e-4), spec.launchPower, 1.0);
}

TEST(GpuDutModel, DecaysBetweenAndAfterKernels)
{
    const auto spec = GpuSpec::rtx4000Ada();
    GpuDutModel gpu(spec);
    gpu.launchKernel(0.0, 1.0, 120.0);

    const double end_power = gpu.totalPower(1.0);
    const double one_tau = gpu.totalPower(1.0 + spec.decayTau);
    EXPECT_NEAR(one_tau - spec.idlePower,
                (end_power - spec.idlePower) * std::exp(-1.0), 0.5);
    EXPECT_NEAR(gpu.totalPower(10.0), spec.idlePower, 0.1);
}

TEST(GpuDutModel, ProgramValidation)
{
    GpuDutModel gpu(GpuSpec::rtx4000Ada());
    EXPECT_THROW(gpu.setProgram({{0.0, -1.0, 100.0, 0}}),
                 UsageError);
    EXPECT_THROW(gpu.setProgram({{0.0, 1.0, 100.0, 0},
                                 {0.5, 1.0, 100.0, 0}}),
                 UsageError);
    gpu.launchKernel(0.0, 1.0, 100.0);
    EXPECT_THROW(gpu.launchKernel(0.5, 1.0, 100.0), UsageError);
    gpu.launchKernel(2.0, 1.0, 100.0); // after the first: fine
}

TEST(GpuDutModel, ZeroSustainedUsesSpecDefault)
{
    const auto spec = GpuSpec::rtx4000Ada();
    GpuDutModel gpu(spec);
    gpu.launchKernel(0.0, 5.0, 0.0);
    EXPECT_NEAR(gpu.totalPower(4.9), spec.sustainedPower, 1.5);
}

TEST(GpuDutModel, ClearProgramReturnsToIdle)
{
    GpuDutModel gpu(GpuSpec::rtx4000Ada().tuningVariant());
    gpu.launchKernel(0.0, 100.0, 99.0);
    EXPECT_GT(gpu.totalPower(50.0), 90.0);
    gpu.clearProgram();
    EXPECT_DOUBLE_EQ(gpu.totalPower(50.0),
                     gpu.spec().idlePower);
}

TEST(GpuDutModel, MultiKernelProgramSelectsCorrectKernel)
{
    GpuDutModel gpu(GpuSpec::rtx4000Ada().tuningVariant());
    gpu.setProgram({{1.0, 0.5, 50.0, 0}, {2.0, 0.5, 90.0, 0}});
    EXPECT_NEAR(gpu.totalPower(1.25), 50.0, 1e-9);
    EXPECT_NEAR(gpu.totalPower(2.25), 90.0, 1e-9);
    // Gap between kernels: decaying from the first one.
    const double gap = gpu.totalPower(1.6);
    EXPECT_LT(gap, 50.0);
    EXPECT_GT(gap, gpu.spec().idlePower - 1e-9);
}

TEST(GpuDutModel, RailSplitRespectsPcieBudgets)
{
    GpuDutModel gpu(GpuSpec::rtx4000Ada(),
                    TraceDut::pcieThreeRail());
    gpu.launchKernel(0.0, 10.0, 120.0);
    const double t = 9.0;
    const double total = gpu.totalPower(t);
    double sum = 0.0;
    for (unsigned rail = 0; rail < gpu.railCount(); ++rail) {
        const double amps =
            gpu.current(rail, t, rail == 0 ? 3.3 : 12.0);
        sum += amps * (rail == 0 ? 3.3 : 12.0);
    }
    EXPECT_NEAR(sum, total, 1e-6);
    EXPECT_LE(gpu.current(0, t, 3.3) * 3.3, 9.9 + 1e-9);
    EXPECT_THROW(gpu.current(3, t, 12.0), UsageError);
}

TEST(GpuDutModel, ConcurrentReadsWhileRescheduling)
{
    // The firmware thread reads while the tuner swaps programs; the
    // atomic shared_ptr snapshot must never tear or throw.
    GpuDutModel gpu(GpuSpec::rtx4000Ada().tuningVariant());
    std::atomic<bool> stop{false};
    std::thread reader([&] {
        double t = 0.0;
        while (!stop.load()) {
            const double p = gpu.totalPower(t);
            ASSERT_GE(p, 0.0);
            ASSERT_LE(p, 200.0);
            t += 1e-5;
        }
    });
    for (int i = 0; i < 2000; ++i) {
        gpu.setProgram({{i * 1.0, 0.5, 50.0 + i % 50, 0}});
    }
    stop.store(true);
    reader.join();
}

TEST(SocDutModel, AddsCarrierBoardPower)
{
    SocDutModel soc(GpuSpec::jetsonAgxOrinModule(), 4.8, 20.0);
    const double module_idle =
        GpuSpec::jetsonAgxOrinModule().idlePower;
    EXPECT_DOUBLE_EQ(soc.modulePower(0.0), module_idle);
    EXPECT_DOUBLE_EQ(soc.truePower(0.0), module_idle + 4.8);
    EXPECT_NEAR(soc.current(0, 0.0, 20.0) * 20.0,
                module_idle + 4.8, 1e-9);
    EXPECT_THROW(soc.current(1, 0.0, 20.0), UsageError);
}

TEST(SocDutModel, ModuleKernelVisibleOnUsbC)
{
    SocDutModel soc(GpuSpec::jetsonAgxOrinModule().tuningVariant(),
                    4.8, 20.0);
    soc.module().launchKernel(0.0, 1.0, 40.0);
    EXPECT_NEAR(soc.truePower(0.5), 44.8, 1e-9);
}

} // namespace
} // namespace ps3::dut
