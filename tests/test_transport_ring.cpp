/**
 * @file
 * Tests for the lock-free SPSC byte ring and the in-process pipe
 * device: wraparound integrity, bulk pops across the wrap seam,
 * shutdown/interrupt semantics, and a threaded producer/consumer
 * stress. Build with -DPS3_SANITIZE=thread to check the ring's
 * memory-ordering contract under TSan.
 */

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "transport/fault_injection.hpp"
#include "transport/pipe_device.hpp"
#include "transport/spsc_ring.hpp"

namespace ps3::transport {
namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

TEST(SpscByteRing, RoundsCapacityUpToPowerOfTwo)
{
    EXPECT_EQ(SpscByteRing(100).capacity(), 128u);
    EXPECT_EQ(SpscByteRing(1).capacity(), 64u);
    EXPECT_EQ(SpscByteRing(4096).capacity(), 4096u);
}

TEST(SpscByteRing, PushPopRoundTrip)
{
    SpscByteRing ring(64);
    const std::uint8_t data[] = {1, 2, 3, 4, 5};
    EXPECT_EQ(ring.push(data, sizeof(data)), sizeof(data));
    EXPECT_EQ(ring.size(), 5u);

    std::uint8_t out[8] = {};
    EXPECT_EQ(ring.pop(out, 3, 0.1), 3u);
    EXPECT_EQ(out[0], 1);
    EXPECT_EQ(out[2], 3);
    EXPECT_EQ(ring.pop(out, 8, 0.1), 2u);
    EXPECT_EQ(out[1], 5);
    EXPECT_EQ(ring.size(), 0u);
}

TEST(SpscByteRing, PopTimesOutWhenEmpty)
{
    SpscByteRing ring(64);
    std::uint8_t out[4];
    const auto start = Clock::now();
    EXPECT_EQ(ring.pop(out, sizeof(out), 0.05), 0u);
    EXPECT_LT(secondsSince(start), 2.0);
}

TEST(SpscByteRing, WraparoundPreservesByteSequence)
{
    // Chunk sizes co-prime with the capacity sweep the indices over
    // every wrap offset; the byte sequence must survive each seam.
    SpscByteRing ring(64);
    ASSERT_EQ(ring.capacity(), 64u);
    std::uint8_t seq = 0;
    std::uint8_t expect = 0;
    std::vector<std::uint8_t> chunk;
    for (int round = 0; round < 400; ++round) {
        const std::size_t n =
            1 + static_cast<std::size_t>((round * 7) % 23);
        chunk.clear();
        for (std::size_t i = 0; i < n; ++i)
            chunk.push_back(seq++);
        ASSERT_EQ(ring.push(chunk.data(), n), n);

        std::uint8_t out[32];
        std::size_t got = 0;
        while (got < n)
            got += ring.pop(out + got, n - got, 0.5);
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(out[i], expect++) << "round " << round;
    }
}

TEST(SpscByteRing, PopBulkSplitsAtWrapSeamAndPopStitches)
{
    SpscByteRing ring(64);
    std::uint8_t scratch[64];

    // Walk the indices to offset 48 so a 32-byte write wraps.
    ASSERT_EQ(ring.push(scratch, 48), 48u);
    ASSERT_EQ(ring.pop(scratch, 48, 0.1), 48u);

    std::uint8_t data[32];
    for (std::uint8_t i = 0; i < 32; ++i)
        data[i] = i;
    ASSERT_EQ(ring.push(data, sizeof(data)), sizeof(data));

    // popBulk returns the contiguous prefix up to the seam first …
    const ByteSpan first = ring.popBulk(64, 0.1);
    ASSERT_EQ(first.size, 16u);
    for (std::uint8_t i = 0; i < 16; ++i)
        EXPECT_EQ(first.data[i], i);
    ring.consume(first.size);

    // … and the post-seam remainder on the next call.
    const ByteSpan rest = ring.popBulk(64, 0.0);
    ASSERT_EQ(rest.size, 16u);
    for (std::uint8_t i = 0; i < 16; ++i)
        EXPECT_EQ(rest.data[i], 16 + i);
    ring.consume(rest.size);

    // pop() by contrast stitches across the seam in one call.
    ASSERT_EQ(ring.push(scratch, 48), 48u);
    ASSERT_EQ(ring.pop(scratch, 48, 0.1), 48u);
    ASSERT_EQ(ring.push(data, sizeof(data)), sizeof(data));
    std::uint8_t out[32] = {};
    EXPECT_EQ(ring.pop(out, sizeof(out), 0.1), 32u);
    for (std::uint8_t i = 0; i < 32; ++i)
        EXPECT_EQ(out[i], i);
}

TEST(SpscByteRing, ShutdownWakesBlockedPopAndDrains)
{
    SpscByteRing ring(64);
    std::atomic<bool> woke{false};
    std::thread consumer([&] {
        std::uint8_t b[8];
        EXPECT_EQ(ring.pop(b, sizeof(b), 10.0), 0u);
        woke.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const auto start = Clock::now();
    ring.shutdown();
    consumer.join();
    EXPECT_TRUE(woke.load());
    EXPECT_LT(secondsSince(start), 5.0);

    // Buffered bytes keep draining after shutdown; pushes drop.
    SpscByteRing drained(64);
    const std::uint8_t data[] = {7, 8, 9};
    ASSERT_EQ(drained.push(data, sizeof(data)), sizeof(data));
    drained.shutdown();
    EXPECT_EQ(drained.push(data, sizeof(data)), 0u);
    std::uint8_t out[8];
    EXPECT_EQ(drained.pop(out, sizeof(out), 0.1), 3u);
    EXPECT_EQ(out[0], 7);
    EXPECT_EQ(drained.pop(out, sizeof(out), 0.05), 0u);
}

TEST(SpscByteRing, InterruptWakesBlockedPopOnce)
{
    SpscByteRing ring(64);
    std::thread waker([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        ring.interruptWaiters();
    });
    std::uint8_t out[4];
    const auto start = Clock::now();
    EXPECT_EQ(ring.pop(out, sizeof(out), 10.0), 0u);
    EXPECT_LT(secondsSince(start), 5.0);
    waker.join();

    // One-shot: the next pop blocks normally until its timeout.
    const auto again = Clock::now();
    EXPECT_EQ(ring.pop(out, sizeof(out), 0.05), 0u);
    EXPECT_LT(secondsSince(again), 2.0);
}

TEST(SpscByteRing, PushBlocksOnFullRingUntilConsumerFrees)
{
    SpscByteRing ring(64);
    std::vector<std::uint8_t> fill(64, 0xAA);
    ASSERT_EQ(ring.push(fill.data(), fill.size()), fill.size());

    std::atomic<bool> pushed{false};
    std::thread producer([&] {
        std::uint8_t extra[32];
        for (std::uint8_t i = 0; i < 32; ++i)
            extra[i] = i;
        EXPECT_EQ(ring.push(extra, sizeof(extra)), sizeof(extra));
        pushed.store(true, std::memory_order_release);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));

    std::uint8_t out[64];
    ASSERT_EQ(ring.pop(out, sizeof(out), 0.5), 64u);
    producer.join();
    EXPECT_TRUE(pushed.load());
    std::size_t got = 0;
    while (got < 32)
        got += ring.pop(out + got, 32 - got, 0.5);
    for (std::uint8_t i = 0; i < 32; ++i)
        EXPECT_EQ(out[i], i);
}

TEST(SpscByteRing, ThreadedStressPreservesStream)
{
    // Producer and consumer hammer a deliberately small ring with
    // varying chunk sizes; every byte must arrive exactly once, in
    // order. Run under -DPS3_SANITIZE=thread to validate the
    // acquire/release contract, not just the data.
    SpscByteRing ring(1u << 10);
    constexpr std::size_t kTotal = 1u << 20;

    std::thread producer([&] {
        std::vector<std::uint8_t> chunk;
        std::size_t sent = 0;
        std::uint32_t lcg = 1;
        while (sent < kTotal) {
            lcg = lcg * 1664525u + 1013904223u;
            const std::size_t n =
                std::min<std::size_t>(1 + (lcg >> 20) % 700,
                                      kTotal - sent);
            chunk.clear();
            for (std::size_t i = 0; i < n; ++i)
                chunk.push_back(
                    static_cast<std::uint8_t>((sent + i) & 0xFF));
            ASSERT_EQ(ring.push(chunk.data(), n), n);
            sent += n;
        }
    });

    std::vector<std::uint8_t> buffer(2048);
    std::size_t received = 0;
    while (received < kTotal) {
        const std::size_t got =
            ring.pop(buffer.data(), buffer.size(), 1.0);
        ASSERT_GT(got, 0u) << "stream stalled at " << received;
        for (std::size_t i = 0; i < got; ++i) {
            ASSERT_EQ(buffer[i],
                      static_cast<std::uint8_t>((received + i) & 0xFF))
                << "at offset " << received + i;
        }
        received += got;
    }
    producer.join();
    EXPECT_EQ(ring.size(), 0u);
}

TEST(PipeDevice, RoundTripOnBothBackends)
{
    for (const auto backend : {PipeDevice::Backend::LockFreeRing,
                               PipeDevice::Backend::MutexQueue}) {
        PipeDevice pipe(backend, 256);
        EXPECT_FALSE(pipe.closed());

        std::vector<std::uint8_t> seen;
        pipe.setHostWriteHandler(
            [&](const std::uint8_t *data, std::size_t size) {
                seen.insert(seen.end(), data, data + size);
            });

        const std::uint8_t down[] = {10, 20, 30};
        pipe.deviceWrite(down, sizeof(down));
        EXPECT_EQ(pipe.buffered(), 3u);
        std::uint8_t out[8];
        EXPECT_EQ(pipe.read(out, sizeof(out), 0.1), 3u);
        EXPECT_EQ(out[2], 30);

        const std::uint8_t up[] = {'S'};
        pipe.write(up, sizeof(up));
        ASSERT_EQ(seen.size(), 1u);
        EXPECT_EQ(seen[0], 'S');

        pipe.closeFromDevice();
        EXPECT_TRUE(pipe.closed());
        EXPECT_EQ(pipe.read(out, sizeof(out), 0.05), 0u);
    }
}

TEST(PipeDevice, CloseDrainsBufferedBytesFirst)
{
    PipeDevice pipe(PipeDevice::Backend::LockFreeRing, 256);
    const std::uint8_t data[] = {1, 2, 3, 4};
    pipe.deviceWrite(data, sizeof(data));
    pipe.closeFromDevice();

    std::uint8_t out[8];
    EXPECT_EQ(pipe.read(out, sizeof(out), 0.1), 4u);
    EXPECT_EQ(pipe.read(out, sizeof(out), 0.05), 0u);
    EXPECT_TRUE(pipe.closed());
}

TEST(PipeDevice, InterruptReadsWakesBlockedRead)
{
    for (const auto backend : {PipeDevice::Backend::LockFreeRing,
                               PipeDevice::Backend::MutexQueue}) {
        PipeDevice pipe(backend, 256);
        std::thread waker([&] {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
            pipe.interruptReads();
        });
        std::uint8_t out[4];
        const auto start = Clock::now();
        EXPECT_EQ(pipe.read(out, sizeof(out), 10.0), 0u);
        EXPECT_LT(secondsSince(start), 5.0);
        EXPECT_FALSE(pipe.closed());
        waker.join();
    }
}

TEST(PipeDevice, FaultInjectionComposesOverBothBackends)
{
    for (const auto backend : {PipeDevice::Backend::LockFreeRing,
                               PipeDevice::Backend::MutexQueue}) {
        PipeDevice pipe(backend, 1024);
        FaultProfile profile;
        profile.dropProbability = 0.5;
        FaultInjectingDevice faulty(pipe, profile, /*seed=*/42);

        std::vector<std::uint8_t> data(512, 0x77);
        pipe.deviceWrite(data.data(), data.size());
        pipe.closeFromDevice();

        std::size_t got = 0;
        std::uint8_t out[256];
        std::size_t n;
        while ((n = faulty.read(out, sizeof(out), 0.05)) != 0)
            got += n;
        // Half the bytes drop (within loose binomial bounds).
        EXPECT_GT(faulty.faultCount(), 100u);
        EXPECT_LT(got, data.size());
        EXPECT_GT(got, 100u);
    }
}

} // namespace
} // namespace ps3::transport
