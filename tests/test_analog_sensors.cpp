/**
 * @file
 * Unit and property tests for the analog front-end physics: filters,
 * Hall current sensor, isolated voltage sensor, ADC, module
 * catalogue and the Table I error budget.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "analog/error_budget.hpp"
#include "analog/sensor_models.hpp"
#include "analog/sensor_module_spec.hpp"
#include "common/errors.hpp"
#include "common/statistics.hpp"

namespace ps3::analog {
namespace {

TEST(OnePoleFilter, RejectsNonPositiveBandwidth)
{
    EXPECT_THROW(OnePoleFilter(0.0), UsageError);
    EXPECT_THROW(OnePoleFilter(-1.0), UsageError);
}

TEST(OnePoleFilter, PrimesAtFirstInput)
{
    OnePoleFilter filter(1000.0);
    EXPECT_DOUBLE_EQ(filter.step(5.0, 1e-3), 5.0);
}

TEST(OnePoleFilter, StepReaches63PercentAtTau)
{
    const double bandwidth = 1000.0;
    OnePoleFilter filter(bandwidth);
    filter.reset(0.0);
    const double tau = 1.0 / (2.0 * M_PI * bandwidth);
    // Advance by exactly one time constant in small steps.
    const int steps = 1000;
    double out = 0.0;
    for (int i = 0; i < steps; ++i)
        out = filter.step(1.0, tau / steps);
    EXPECT_NEAR(out, 1.0 - std::exp(-1.0), 1e-3);
}

TEST(OnePoleFilter, ConvergesToInput)
{
    OnePoleFilter filter(300e3);
    filter.reset(0.0);
    double out = 0.0;
    for (int i = 0; i < 100; ++i)
        out = filter.step(2.5, 50e-6); // >> tau
    EXPECT_NEAR(out, 2.5, 1e-9);
}

TEST(OnePoleFilter, ResetJumpsState)
{
    OnePoleFilter filter(100.0);
    filter.reset(3.0);
    EXPECT_DOUBLE_EQ(filter.output(), 3.0);
}

TEST(ModuleCatalog, AllStockModulesPresent)
{
    const auto all = modules::allStockModules();
    EXPECT_EQ(all.size(), 6u);
    EXPECT_EQ(modules::byName("12V-10A").nominalVoltage, 12.0);
    EXPECT_EQ(modules::byName("USB-C").nominalVoltage, 20.0);
    EXPECT_EQ(modules::byName("HighCurrent-50A").maxCurrent, 50.0);
    EXPECT_THROW(modules::byName("nonexistent"), UsageError);
}

TEST(ModuleCatalog, TransferSlopesAreConsistent)
{
    for (const auto &spec : modules::allStockModules()) {
        // Full-scale current maps to the ADC rail.
        EXPECT_NEAR(spec.currentOffsetVoltage()
                        + spec.currentSensitivity()
                              * spec.currentFullScale,
                    kAdcVref, 1e-9)
            << spec.name;
        // Full-scale voltage maps to the ADC rail.
        EXPECT_NEAR(spec.voltageGain() * spec.voltageFullScale,
                    kAdcVref, 1e-9)
            << spec.name;
        // Rated operating point fits inside the measurement range.
        EXPECT_LE(spec.maxCurrent, spec.currentFullScale)
            << spec.name;
        EXPECT_LE(spec.nominalVoltage, spec.voltageFullScale)
            << spec.name;
    }
}

TEST(CurrentSensor, NoiselessTransferIsLinearAtZeroSpread)
{
    auto spec = modules::slot12V10A();
    spec.linearityFraction = 0.0;
    spec.thermalDriftAmpsPp = 0.0;
    CurrentSensorModel sensor(spec, 1);
    // Transfer: vref/2 + sensitivity * I.
    for (double amps : {-10.0, -5.0, 0.0, 5.0, 10.0}) {
        const double vout =
            sensor.sample(amps, 1.0 + amps, NoiseMode::Noiseless);
        EXPECT_NEAR(vout,
                    spec.currentOffsetVoltage()
                        + spec.currentSensitivity() * amps,
                    1e-6);
    }
}

TEST(CurrentSensor, OffsetAndGainErrorsApply)
{
    auto spec = modules::slot12V10A();
    spec.linearityFraction = 0.0;
    spec.thermalDriftAmpsPp = 0.0;
    CurrentSensorModel sensor(spec, 1, /*offset=*/0.1,
                              /*gain_error=*/0.01);
    const double vout = sensor.sample(5.0, 0.0, NoiseMode::Noiseless);
    const double expected =
        spec.currentOffsetVoltage()
        + spec.currentSensitivity() * (5.0 + 0.1) * 1.01;
    EXPECT_NEAR(vout, expected, 1e-9);
}

TEST(CurrentSensor, NonlinearityVanishesAtZeroAndFullScale)
{
    auto spec = modules::slot12V10A();
    spec.thermalDriftAmpsPp = 0.0;
    CurrentSensorModel sensor(spec, 1);
    // S-curve k*(x^3 - x) is zero at x = 0 and x = 1.
    const double at_zero = sensor.sample(0.0, 0.0,
                                         NoiseMode::Noiseless);
    EXPECT_NEAR(at_zero, spec.currentOffsetVoltage(), 1e-9);
    CurrentSensorModel sensor2(spec, 1);
    const double at_fs = sensor2.sample(spec.currentFullScale, 0.0,
                                        NoiseMode::Noiseless);
    EXPECT_NEAR(at_fs, kAdcVref, 1e-9);
}

TEST(CurrentSensor, NoiseMatchesSpec)
{
    const auto spec = modules::slot12V10A();
    CurrentSensorModel sensor(spec, 42);
    RunningStatistics stats;
    double t = 0.0;
    for (int i = 0; i < 100000; ++i) {
        t += 1e-6;
        stats.add(sensor.sample(0.0, t));
    }
    const double amps_rms =
        stats.stddev() / spec.currentSensitivity();
    EXPECT_NEAR(amps_rms, spec.hallNoiseRmsRaw,
                0.05 * spec.hallNoiseRmsRaw);
}

TEST(CurrentSensor, SaturatesAtRails)
{
    const auto spec = modules::slot12V10A();
    CurrentSensorModel sensor(spec, 1);
    EXPECT_DOUBLE_EQ(sensor.sample(1000.0, 0.0,
                                   NoiseMode::Noiseless),
                     kAdcVref);
    CurrentSensorModel sensor2(spec, 1);
    EXPECT_DOUBLE_EQ(sensor2.sample(-1000.0, 0.0,
                                    NoiseMode::Noiseless),
                     0.0);
}

TEST(CurrentSensor, ThermalDriftIsSlowAndBounded)
{
    auto spec = modules::slot12V10A();
    spec.linearityFraction = 0.0;
    CurrentSensorModel sensor(spec, 3);
    // Sample over a full drift period; drift must stay within
    // +-pp/2 and have visible amplitude.
    RunningStatistics amps;
    for (int i = 0; i < 500; ++i) {
        const double t = spec.thermalDriftPeriod * i / 500.0;
        const double vout =
            sensor.sample(0.0, t, NoiseMode::Noiseless);
        amps.add((vout - spec.currentOffsetVoltage())
                 / spec.currentSensitivity());
    }
    EXPECT_LE(amps.max(), spec.thermalDriftAmpsPp / 2 + 1e-9);
    EXPECT_GE(amps.min(), -spec.thermalDriftAmpsPp / 2 - 1e-9);
    EXPECT_GT(amps.peakToPeak(), 0.8 * spec.thermalDriftAmpsPp);
}

TEST(VoltageSensor, TransferAndGainError)
{
    const auto spec = modules::slot12V10A();
    VoltageSensorModel sensor(spec, 1, /*gain_error=*/0.02);
    const double vout = sensor.sample(12.0, 0.0,
                                      NoiseMode::Noiseless);
    EXPECT_NEAR(vout, 12.0 * 1.02 * spec.voltageGain(), 1e-9);
}

TEST(VoltageSensor, NoiseMatchesSpec)
{
    const auto spec = modules::slot12V10A();
    VoltageSensorModel sensor(spec, 11);
    RunningStatistics stats;
    double t = 0.0;
    for (int i = 0; i < 100000; ++i) {
        t += 1e-6;
        stats.add(sensor.sample(12.0, t));
    }
    const double volts_rms = stats.stddev() / spec.voltageGain();
    EXPECT_NEAR(volts_rms, spec.ampNoiseRmsInput,
                0.05 * spec.ampNoiseRmsInput);
}

TEST(VoltageSensor, BandwidthLimitsFastEdges)
{
    const auto spec = modules::slot12V10A(); // 100 kHz chain
    VoltageSensorModel sensor(spec, 1);
    sensor.sample(0.0, 0.0, NoiseMode::Noiseless); // prime at 0
    // A step observed 1 us later is still far from settled.
    const double vout = sensor.sample(12.0, 1e-6,
                                      NoiseMode::Noiseless);
    EXPECT_LT(vout, 12.0 * spec.voltageGain() * 0.8);
}

TEST(Adc, CodesAndBinCenters)
{
    EXPECT_EQ(AdcModel::convert(0.0), 0);
    EXPECT_EQ(AdcModel::convert(-1.0), 0);
    EXPECT_EQ(AdcModel::convert(kAdcVref), kAdcCodes - 1);
    EXPECT_EQ(AdcModel::convert(10.0), kAdcCodes - 1);
    EXPECT_EQ(AdcModel::convert(kAdcVref / 2), kAdcCodes / 2);
    EXPECT_DOUBLE_EQ(AdcModel::toVolts(0), 0.5 * kAdcLsb);
}

TEST(Adc, ConversionTimeMatchesPaperTiming)
{
    // 25 cycles at 24 MHz; 48 conversions are exactly 50 us.
    EXPECT_NEAR(AdcModel::kConversionTime * 48, 50e-6, 1e-12);
}

/** Property: quantisation error is bounded by half an LSB. */
class AdcProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(AdcProperty, RoundTripErrorWithinHalfLsb)
{
    const double volts = GetParam() * kAdcVref / 1000.0;
    const auto code = AdcModel::convert(volts);
    const double back = AdcModel::toVolts(code);
    EXPECT_LE(std::abs(back - volts), kAdcLsb / 2.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AdcProperty,
                         ::testing::Range(0, 1000, 37));

TEST(ErrorBudget, MatchesPaperTableOne)
{
    const auto b12 = computeErrorBudget(modules::slot12V10A());
    EXPECT_NEAR(b12.voltageError, 0.0286, 0.001);
    EXPECT_NEAR(b12.currentError, 0.35, 0.01);
    EXPECT_NEAR(b12.powerError, 4.2, 0.1);

    const auto b33 = computeErrorBudget(modules::slot3V3_10A());
    EXPECT_NEAR(b33.voltageError, 0.0199, 0.001);
    EXPECT_NEAR(b33.powerError, 1.2, 0.05);

    const auto busb = computeErrorBudget(modules::usbC());
    EXPECT_NEAR(busb.powerError, 7.0, 0.15);

    const auto bext = computeErrorBudget(modules::pcie8pin20A());
    EXPECT_NEAR(bext.currentError, 0.41, 0.01);
    EXPECT_NEAR(bext.powerError, 5.0, 0.1);
}

TEST(ErrorBudget, PowerErrorGrowsWithOperatingPoint)
{
    const auto spec = modules::slot12V10A();
    EXPECT_LT(powerErrorAt(spec, 12.0, 1.0),
              powerErrorAt(spec, 12.0, 10.0));
    EXPECT_LT(powerErrorAt(spec, 3.3, 10.0),
              powerErrorAt(spec, 12.0, 10.0));
}

} // namespace
} // namespace ps3::analog
