/**
 * @file
 * Tests for the dump-file reader: full write/read round trip through
 * the host library, marker-based energy attribution, and malformed
 * input handling.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <unistd.h>

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "host/dump_reader.hpp"
#include "host/dump_writer.hpp"
#include "host/sim_setup.hpp"

namespace ps3::host {
namespace {

class DumpRoundTrip : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Unique per process: ctest runs each TEST_F as its own
        // process, possibly in parallel, and a shared name lets one
        // test's TearDown unlink the file under another's reader.
        path_ = "/tmp/ps3_dump_reader_test."
                + std::to_string(static_cast<long>(::getpid()))
                + ".txt";
        std::filesystem::remove(path_);

        auto rig = rigs::labBench(analog::modules::slot12V10A(), 12.0,
                                  5.0);
        auto sensor = rig.connect();
        sensor->dump(path_);
        sensor->mark('B');
        sensor->waitForSamples(20000); // 1 s
        sensor->mark('E');
        sensor->waitForSamples(4000);
        sensor->dump("");
    }

    void TearDown() override { std::filesystem::remove(path_); }

    std::string path_;
};

TEST_F(DumpRoundTrip, ParsesEverything)
{
    const auto file = DumpFile::load(path_);
    EXPECT_GT(file.samples().size(), 20000u);
    ASSERT_EQ(file.markers().size(), 2u);
    EXPECT_EQ(file.markers()[0].marker, 'B');
    EXPECT_EQ(file.markers()[1].marker, 'E');
    EXPECT_NEAR(file.sampleRateHz(), 20e3, 1.0);
    EXPECT_GE(file.header().size(), 3u);

    // Sample content is internally consistent.
    for (std::size_t i = 0; i < file.samples().size(); i += 500) {
        const auto &s = file.samples()[i];
        ASSERT_EQ(s.power.size(), 1u);
        EXPECT_NEAR(s.power[0], s.voltage[0] * s.current[0], 2e-3);
        EXPECT_NEAR(s.totalPower, s.power[0], 2e-3);
    }
}

TEST_F(DumpRoundTrip, TimesAreMonotonicAt20kHz)
{
    const auto file = DumpFile::load(path_);
    const auto &samples = file.samples();
    for (std::size_t i = 1; i < samples.size(); ++i) {
        ASSERT_NEAR(samples[i].time - samples[i - 1].time, 50e-6,
                    1e-9);
    }
}

TEST_F(DumpRoundTrip, MarkerEnergyAttribution)
{
    const auto file = DumpFile::load(path_);
    const double joules = file.energyBetweenMarkers('B', 'E');
    const double span = file.markers()[1].time
                        - file.markers()[0].time;
    // ~5 A x ~11.95 V across the marked window.
    EXPECT_NEAR(joules, 5.0 * 11.95 * span, 2.0 * span);
    EXPECT_THROW(file.energyBetweenMarkers('X', 'E'), UsageError);
    EXPECT_THROW(file.energyBetweenMarkers('E', 'B'), UsageError);
}

TEST_F(DumpRoundTrip, WindowedEnergy)
{
    const auto file = DumpFile::load(path_);
    const double t0 = file.samples().front().time;
    const double full = file.energy(t0, t0 + 1.0);
    const double half = file.energy(t0, t0 + 0.5);
    EXPECT_NEAR(half * 2.0, full, 0.05 * full);
    EXPECT_DOUBLE_EQ(file.energy(t0 + 1.0, t0), 0.0);
}

TEST(DumpFileErrors, MissingFile)
{
    EXPECT_THROW(DumpFile::load("/nonexistent/dump.txt"),
                 UsageError);
}

TEST(DumpFileErrors, MalformedLines)
{
    const std::string path = "/tmp/ps3_dump_bad.txt";
    {
        std::ofstream out(path);
        out << "S 1.0 12.0 2.0\n"; // not (V I P)+total
    }
    EXPECT_THROW(DumpFile::load(path), UsageError);
    {
        std::ofstream out(path);
        out << "Q what\n";
    }
    EXPECT_THROW(DumpFile::load(path), UsageError);
    {
        std::ofstream out(path);
        out << "M\n";
    }
    EXPECT_THROW(DumpFile::load(path), UsageError);
    std::filesystem::remove(path);
}

// energyBetweenMarkers measures the span between the *first*
// occurrence of each marker, found independently (see the header
// contract) — repeated pairs must measure the first span, an end
// marker preceding every begin is an ordering error, and a marker
// paired with itself spans its first two occurrences.
class MarkerFirstOccurrence : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = "/tmp/ps3_marker_first."
                + std::to_string(static_cast<long>(::getpid()))
                + ".txt";
    }

    void TearDown() override { std::filesystem::remove(path_); }

    /** Constant 12 W samples every 50 ms plus the given markers. */
    DumpFile
    makeDump(const std::vector<std::pair<char, double>> &markers)
    {
        std::ofstream out(path_);
        for (int i = 0; i <= 10; ++i) {
            const double t = 0.05 * i;
            out << "S " << t << " 12.0 1.0 12.0 12.0\n";
        }
        for (const auto &[marker, time] : markers)
            out << "M " << marker << ' ' << time << "\n";
        out.close();
        return DumpFile::load(path_);
    }

    std::string path_;
};

TEST_F(MarkerFirstOccurrence, RepeatedPairsMeasureTheFirstSpan)
{
    const auto file = makeDump(
        {{'B', 0.1}, {'E', 0.2}, {'B', 0.3}, {'E', 0.45}});
    EXPECT_NEAR(file.energyBetweenMarkers('B', 'E'),
                file.energy(0.1, 0.2), 1e-9);
}

TEST_F(MarkerFirstOccurrence, EndBeforeEveryBeginThrows)
{
    // A later 'E' exists, but the *first* 'E' precedes the first
    // 'B': first-occurrence semantics make this an ordering error,
    // not a prompt to skip to the next 'E'.
    const auto file =
        makeDump({{'E', 0.1}, {'B', 0.2}, {'E', 0.3}});
    EXPECT_THROW(file.energyBetweenMarkers('B', 'E'), UsageError);
}

TEST_F(MarkerFirstOccurrence, SameMarkerSpansItsFirstTwoOccurrences)
{
    const auto file =
        makeDump({{'R', 0.1}, {'R', 0.3}, {'R', 0.45}});
    EXPECT_NEAR(file.energyBetweenMarkers('R', 'R'),
                file.energy(0.1, 0.3), 1e-9);
}

TEST_F(MarkerFirstOccurrence, MissingEitherMarkerThrows)
{
    const auto file = makeDump({{'B', 0.1}});
    EXPECT_THROW(file.energyBetweenMarkers('B', 'E'), UsageError);
    EXPECT_THROW(file.energyBetweenMarkers('X', 'B'), UsageError);
    // A lone marker paired with itself has no second occurrence.
    EXPECT_THROW(file.energyBetweenMarkers('B', 'B'), UsageError);
}

// Gap annotations ('G' records): written by network clients when
// the stream had holes (host::GapEvent), in both formats.

TEST(DumpGapRecords, TextRoundTrip)
{
    const std::string path = "/tmp/ps3_dump_gap_"
                             + std::to_string(::getpid()) + ".txt";
    {
        DumpWriter writer(path, "# gap test\n");
        DumpRecord sample{};
        sample.time = 1.0;
        sample.presentMask = 0x1;
        sample.voltage[0] = 12.0;
        sample.current[0] = 2.0;
        writer.push(sample);

        DumpRecord gap{};
        gap.gap = true;
        gap.time = 1.5;
        gap.gapRecords = 250;
        gap.gapSpanSeconds = 0.0125;
        writer.push(gap);

        DumpRecord unknown{}; // restart: size unknowable
        unknown.gap = true;
        unknown.time = 2.0;
        writer.push(unknown);
    }
    const auto file = DumpFile::load(path);
    EXPECT_EQ(file.samples().size(), 1u);
    ASSERT_EQ(file.gaps().size(), 2u);
    EXPECT_DOUBLE_EQ(file.gaps()[0].time, 1.5);
    EXPECT_EQ(file.gaps()[0].records, 250u);
    EXPECT_NEAR(file.gaps()[0].spanSeconds, 0.0125, 1e-6);
    EXPECT_EQ(file.gaps()[1].records, 0u);
    std::filesystem::remove(path);
}

TEST(DumpGapRecords, BinaryRoundTrip)
{
    const std::string path = "/tmp/ps3_dump_gap_"
                             + std::to_string(::getpid()) + ".ps3b";
    {
        DumpWriter writer(path, "# gap test\n");
        DumpRecord gap{};
        gap.gap = true;
        gap.time = 3.25;
        gap.gapRecords = 123456789ull;
        gap.gapSpanSeconds = 6172.8;
        writer.push(gap);

        DumpRecord sample{};
        sample.time = 4.0;
        sample.presentMask = 0x1;
        sample.voltage[0] = 11.5;
        sample.current[0] = 1.5;
        writer.push(sample);
    }
    const auto file = DumpFile::load(path);
    ASSERT_EQ(file.gaps().size(), 1u);
    // Binary is lossless: exact f64 and u64 round trips.
    EXPECT_DOUBLE_EQ(file.gaps()[0].time, 3.25);
    EXPECT_EQ(file.gaps()[0].records, 123456789ull);
    EXPECT_DOUBLE_EQ(file.gaps()[0].spanSeconds, 6172.8);
    EXPECT_EQ(file.samples().size(), 1u);
    EXPECT_DOUBLE_EQ(file.samples()[0].voltage[0], 11.5);
}

TEST(DumpGapRecords, MalformedGapLineThrows)
{
    const std::string path = "/tmp/ps3_dump_gap_bad.txt";
    {
        std::ofstream out(path);
        out << "G 1.0\n"; // missing records and span
    }
    EXPECT_THROW(DumpFile::load(path), UsageError);
    std::filesystem::remove(path);
}

// Edge cases the windowed query API (host/history.hpp) hits when
// pointed at an arbitrary path: every degenerate input must produce
// a clean UsageError, never a crash or a silently partial parse.

TEST(DumpFileErrors, EmptyFileIsACleanError)
{
    const std::string path = "/tmp/ps3_dump_empty_"
                             + std::to_string(::getpid()) + ".txt";
    { std::ofstream out(path); }
    EXPECT_THROW(DumpFile::load(path), UsageError);
    std::filesystem::remove(path);
}

TEST(DumpFileErrors, HeaderOnlyBinaryDumpIsACleanError)
{
    // The 8-byte binary prefix announces an embedded header longer
    // than the file: the classic "writer died mid-header" artefact.
    const std::string path = "/tmp/ps3_dump_hdr_"
                             + std::to_string(::getpid()) + ".ps3b";
    {
        std::ofstream out(path, std::ios::binary);
        const char prefix[8] = {'P', 'S', '3', 'B', 2, 0,
                                static_cast<char>(0x40), 0};
        out.write(prefix, sizeof(prefix));
        out << "# sample_rate_hz 20000\n"; // < 0x40 bytes promised
    }
    EXPECT_THROW(DumpFile::load(path), UsageError);

    // Prefix alone (magic + version, nothing else) is also clean.
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write("PS3B", 4);
    }
    EXPECT_THROW(DumpFile::load(path), UsageError);
    std::filesystem::remove(path);
}

TEST(DumpFileErrors, TruncatedBinaryRecordHasNoPartialTail)
{
    const std::string path = "/tmp/ps3_dump_trunc_"
                             + std::to_string(::getpid()) + ".ps3b";
    {
        DumpWriter writer(path, "# truncation test\n");
        for (int i = 0; i < 3; ++i) {
            DumpRecord sample{};
            sample.time = 1.0 + 0.5 * i;
            sample.presentMask = 0x3;
            sample.voltage[0] = 12.0;
            sample.current[0] = 2.0;
            sample.voltage[1] = 5.0;
            sample.current[1] = 1.0;
            writer.push(sample);
        }
    }
    // Chop the file mid-record: the reader must refuse the whole
    // file rather than return the records before the tear (a
    // partial tail would silently skew windowed energy queries).
    const auto size = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, size - 7);
    EXPECT_THROW(DumpFile::load(path), UsageError);
    std::filesystem::remove(path);
}

TEST(DumpGapRecords, GapFreeDumpHasNoGaps)
{
    const std::string path = "/tmp/ps3_dump_nogap_"
                             + std::to_string(::getpid()) + ".ps3b";
    {
        DumpWriter writer(path, "# gap-free\n");
        for (int i = 0; i < 10; ++i) {
            DumpRecord sample{};
            sample.time = 50e-6 * i;
            sample.presentMask = 0x1;
            sample.voltage[0] = 12.0;
            sample.current[0] = 2.0;
            writer.push(sample);
        }
    }
    const auto file = DumpFile::load(path);
    EXPECT_EQ(file.samples().size(), 10u);
    EXPECT_TRUE(file.gaps().empty());
    std::filesystem::remove(path);
}

} // namespace
} // namespace ps3::host
