/**
 * @file
 * Broadcast-ring tests: layout and attach validation, wraparound
 * lapping, torn-read impossibility under concurrent overwrite, the
 * exact drop invariant (delivered + dropped == published) across
 * reader claims and producer reclaims, and an 8-subscriber mixed
 * fast/slow fan-out stress — the tsan-check workload for the
 * streaming server's concurrency core.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <thread>
#include <vector>

#include "transport/broadcast_ring.hpp"

namespace ps3::transport {
namespace {

/** 64-byte-aligned backing store for heap-hosted rings. */
struct RingMemory
{
    explicit RingMemory(std::size_t bytes)
        : bytes(bytes),
          memory(::operator new(bytes, std::align_val_t{64}))
    {
    }
    ~RingMemory()
    {
        ::operator delete(memory, std::align_val_t{64});
    }
    std::size_t bytes;
    void *memory;
};

/** Self-checking payload: every word is derived from seq. */
struct Item
{
    std::uint64_t seq = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint64_t c = 0;
};

Item
itemFor(std::uint64_t seq)
{
    return {seq, seq * 0x9E3779B97F4A7C15ull, ~seq,
            (seq << 7) ^ 0x5DEECE66Dull};
}

/** True when every payload word matches the embedded sequence. */
bool
consistent(const Item &item)
{
    const Item want = itemFor(item.seq);
    return item.a == want.a && item.b == want.b && item.c == want.c;
}

using ItemRing = BroadcastRing<Item>;

/** A ring in freshly allocated aligned heap memory. */
struct HeapRing
{
    explicit HeapRing(std::size_t capacity)
        : memory(ItemRing::bytesRequired(capacity)),
          ring(ItemRing::create(memory.memory, memory.bytes,
                                capacity))
    {
    }
    RingMemory memory;
    ItemRing *ring;
};

// ----- layout ------------------------------------------------------------

TEST(BroadcastRing, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(ItemRing::bytesRequired(10), ItemRing::bytesRequired(16));
    HeapRing host(10);
    ASSERT_NE(host.ring, nullptr);
    EXPECT_EQ(host.ring->capacity(), 16u);
}

TEST(BroadcastRing, CreateRejectsShortBuffers)
{
    RingMemory memory(ItemRing::bytesRequired(16));
    EXPECT_EQ(ItemRing::create(memory.memory, memory.bytes - 1, 16),
              nullptr);
    EXPECT_EQ(ItemRing::create(nullptr, memory.bytes, 16), nullptr);
}

TEST(BroadcastRing, AttachValidatesLayout)
{
    HeapRing host(16);
    ASSERT_NE(host.ring, nullptr);

    EXPECT_NE(ItemRing::attach(host.memory.memory, host.memory.bytes),
              nullptr);
    // Same bytes, different payload type: rejected.
    EXPECT_EQ((BroadcastRing<std::uint64_t>::attach(
                  host.memory.memory, host.memory.bytes)),
              nullptr);
    // Truncated mapping: rejected.
    EXPECT_EQ(ItemRing::attach(host.memory.memory,
                               host.memory.bytes - 1),
              nullptr);
    // Corrupt magic: rejected.
    const std::uint32_t zero = 0;
    std::memcpy(host.memory.memory, &zero, sizeof zero);
    EXPECT_EQ(ItemRing::attach(host.memory.memory, host.memory.bytes),
              nullptr);
}

// ----- publish / read ----------------------------------------------------

TEST(BroadcastRing, PublishReadRoundTrip)
{
    HeapRing host(16);
    ItemRing *ring = host.ring;
    ASSERT_NE(ring, nullptr);

    for (std::uint64_t seq = 0; seq < 5; ++seq)
        ring->publish(itemFor(seq));
    EXPECT_EQ(ring->tail(), 5u);
    EXPECT_EQ(ring->oldest(), 0u);

    for (std::uint64_t seq = 0; seq < 5; ++seq) {
        Item item;
        ASSERT_EQ(ring->readAt(seq, item), BroadcastRead::Ok);
        EXPECT_EQ(item.seq, seq);
        EXPECT_TRUE(consistent(item));
    }
    Item item;
    EXPECT_EQ(ring->readAt(5, item), BroadcastRead::NotYet);
}

TEST(BroadcastRing, WraparoundLapsOldSequences)
{
    HeapRing host(8);
    ItemRing *ring = host.ring;
    ASSERT_NE(ring, nullptr);

    for (std::uint64_t seq = 0; seq < 20; ++seq)
        ring->publish(itemFor(seq));
    EXPECT_EQ(ring->tail(), 20u);
    EXPECT_EQ(ring->oldest(), 12u);

    Item item;
    EXPECT_EQ(ring->readAt(0, item), BroadcastRead::Lapped);
    EXPECT_EQ(ring->readAt(11, item), BroadcastRead::Lapped);
    for (std::uint64_t seq = 12; seq < 20; ++seq) {
        ASSERT_EQ(ring->readAt(seq, item), BroadcastRead::Ok);
        EXPECT_EQ(item.seq, seq);
        EXPECT_TRUE(consistent(item));
    }
    EXPECT_EQ(ring->readAt(20, item), BroadcastRead::NotYet);

    // stillValid mirrors the same reuse horizon.
    EXPECT_FALSE(ring->stillValid(11));
    EXPECT_TRUE(ring->stillValid(12));
    EXPECT_TRUE(ring->stillValid(19));
}

TEST(BroadcastRing, HeartbeatAndProducerGoneFlags)
{
    HeapRing host(4);
    ItemRing *ring = host.ring;
    ASSERT_NE(ring, nullptr);

    EXPECT_EQ(ring->heartbeat(), 0u);
    ring->bumpHeartbeat();
    ring->bumpHeartbeat();
    EXPECT_EQ(ring->heartbeat(), 2u);

    EXPECT_FALSE(ring->producerGone());
    ring->markProducerGone();
    EXPECT_TRUE(ring->producerGone());
}

// ----- cursors -----------------------------------------------------------

TEST(BroadcastCursor, ClaimDeliversEverythingWhenKeptUp)
{
    HeapRing host(16);
    ItemRing *ring = host.ring;
    ASSERT_NE(ring, nullptr);

    BroadcastCursor cursor;
    std::uint64_t delivered = 0;
    std::uint64_t published = 0;
    for (unsigned round = 0; round < 100; ++round) {
        for (unsigned i = 0; i < 7; ++i)
            ring->publish(itemFor(published++));
        for (;;) {
            const auto claim = cursor.claim(*ring, 4);
            if (claim.count == 0)
                break;
            for (std::size_t i = 0; i < claim.count; ++i) {
                Item item;
                ASSERT_EQ(ring->readAt(claim.first + i, item),
                          BroadcastRead::Ok);
                EXPECT_EQ(item.seq, claim.first + i);
                ++delivered;
            }
        }
    }
    EXPECT_EQ(delivered, published);
    EXPECT_EQ(cursor.dropped(), 0u);
    EXPECT_EQ(cursor.position(), ring->tail());
}

TEST(BroadcastCursor, ClaimSkipsToOldestAfterLap)
{
    HeapRing host(8);
    ItemRing *ring = host.ring;
    ASSERT_NE(ring, nullptr);

    BroadcastCursor cursor;
    for (std::uint64_t seq = 0; seq < 20; ++seq)
        ring->publish(itemFor(seq));

    const auto claim = cursor.claim(*ring, 100);
    EXPECT_EQ(claim.first, 12u);
    EXPECT_EQ(claim.count, 8u);
    EXPECT_EQ(cursor.dropped(), 12u);
    EXPECT_EQ(cursor.position(), 20u);
}

TEST(BroadcastCursor, ReclaimAdvancesLappedCursorExactly)
{
    HeapRing host(8);
    ItemRing *ring = host.ring;
    ASSERT_NE(ring, nullptr);

    BroadcastCursor cursor;
    // No overwrite pending: reclaim is a no-op.
    ring->publish(itemFor(0));
    ring->publish(itemFor(1));
    EXPECT_FALSE(cursor.wouldLap(*ring, 4));
    EXPECT_EQ(cursor.reclaim(*ring, 4), 0u);
    EXPECT_EQ(cursor.position(), 0u);

    // Fill the ring: the next 4 publishes overwrite sequences 0-3.
    for (std::uint64_t seq = 2; seq < 8; ++seq)
        ring->publish(itemFor(seq));
    EXPECT_TRUE(cursor.wouldLap(*ring, 4));
    EXPECT_EQ(cursor.reclaim(*ring, 4), 4u);
    EXPECT_EQ(cursor.position(), 4u);
    EXPECT_EQ(cursor.dropped(), 4u);

    // A caught-up reader is never reclaimed.
    BroadcastCursor fresh(ring->tail());
    EXPECT_FALSE(fresh.wouldLap(*ring, 4));
    EXPECT_EQ(fresh.reclaim(*ring, 4), 0u);
    EXPECT_EQ(fresh.dropped(), 0u);
}

TEST(BroadcastCursor, DropInvariantHoldsAcrossMixedClaimsAndReclaims)
{
    HeapRing host(8);
    ItemRing *ring = host.ring;
    ASSERT_NE(ring, nullptr);

    BroadcastCursor cursor;
    std::uint64_t delivered = 0;
    constexpr std::uint64_t kPublished = 1000;

    const auto drainOne = [&](std::uint64_t seq) {
        Item item;
        if (ring->readAt(seq, item) == BroadcastRead::Ok) {
            EXPECT_EQ(item.seq, seq);
            EXPECT_TRUE(consistent(item));
            ++delivered;
        } else {
            cursor.countDropped(1);
        }
    };

    for (std::uint64_t seq = 0; seq < kPublished; ++seq) {
        if (seq % 8 == 0)
            cursor.reclaim(*ring, 8);
        ring->publish(itemFor(seq));
        if (seq % 10 == 0) {
            const auto claim = cursor.claim(*ring, 3);
            for (std::size_t i = 0; i < claim.count; ++i)
                drainOne(claim.first + i);
        }
    }
    for (;;) {
        const auto claim = cursor.claim(*ring, 64);
        if (claim.count == 0)
            break;
        for (std::size_t i = 0; i < claim.count; ++i)
            drainOne(claim.first + i);
    }

    EXPECT_EQ(delivered + cursor.dropped(), kPublished);
    EXPECT_GT(delivered, 0u);
    EXPECT_GT(cursor.dropped(), 0u);
}

// ----- concurrency -------------------------------------------------------

TEST(BroadcastRing, TornReadsAreImpossibleUnderConcurrentOverwrite)
{
    // A tiny ring maximises reader/writer slot overlap: almost every
    // read races an overwrite, so a torn copy would surface fast.
    constexpr std::uint64_t kPublished = 30000;
    HeapRing host(4);
    ItemRing *ring = host.ring;
    ASSERT_NE(ring, nullptr);

    std::atomic<bool> produced{false};
    std::atomic<std::uint64_t> torn{0};
    std::atomic<std::uint64_t> observed{0};

    std::thread reader([&] {
        std::uint64_t seq = 0;
        for (;;) {
            Item item;
            switch (ring->readAt(seq, item)) {
            case BroadcastRead::Ok:
                if (item.seq != seq || !consistent(item))
                    torn.fetch_add(1, std::memory_order_relaxed);
                observed.fetch_add(1, std::memory_order_relaxed);
                ++seq;
                break;
            case BroadcastRead::NotYet:
                if (produced.load(std::memory_order_acquire)
                    && seq >= ring->tail())
                    return;
                break;
            case BroadcastRead::Lapped:
                seq = std::max(ring->oldest(), seq + 1);
                break;
            }
        }
    });

    for (std::uint64_t seq = 0; seq < kPublished; ++seq)
        ring->publish(itemFor(seq));
    produced.store(true, std::memory_order_release);
    reader.join();

    EXPECT_EQ(torn.load(), 0u);
    EXPECT_GT(observed.load(), 0u);
}

TEST(BroadcastRing, EightReaderMixedFastSlowStressKeepsDropInvariant)
{
    constexpr std::size_t kCapacity = 512;
    constexpr std::uint64_t kPublished = 30000;
    constexpr unsigned kReaders = 8;
    constexpr std::uint64_t kReclaimEvery = 64;

    HeapRing host(kCapacity);
    ItemRing *ring = host.ring;
    ASSERT_NE(ring, nullptr);

    std::vector<std::unique_ptr<BroadcastCursor>> cursors;
    for (unsigned r = 0; r < kReaders; ++r)
        cursors.push_back(std::make_unique<BroadcastCursor>());

    std::atomic<bool> produced{false};
    std::vector<std::uint64_t> delivered(kReaders, 0);
    std::vector<std::uint64_t> corrupt(kReaders, 0);

    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    for (unsigned r = 0; r < kReaders; ++r) {
        readers.emplace_back([&, r] {
            BroadcastCursor &cursor = *cursors[r];
            const bool slow = (r % 2) != 0;
            std::uint64_t sinceNap = 0;
            for (;;) {
                const auto claim = cursor.claim(*ring, 32);
                if (claim.count == 0) {
                    if (produced.load(std::memory_order_acquire)
                        && cursor.position() >= kPublished)
                        break;
                    std::this_thread::yield();
                    continue;
                }
                for (std::size_t i = 0; i < claim.count; ++i) {
                    const std::uint64_t seq = claim.first + i;
                    Item item;
                    switch (ring->readAt(seq, item)) {
                    case BroadcastRead::Ok:
                        if (item.seq != seq || !consistent(item))
                            ++corrupt[r];
                        ++delivered[r];
                        break;
                    case BroadcastRead::Lapped:
                        // Claimed but overwritten before the copy:
                        // the reader's share of the drop account.
                        cursor.countDropped(1);
                        break;
                    case BroadcastRead::NotYet:
                        // Claimed sequences are always published.
                        ++corrupt[r];
                        break;
                    }
                }
                sinceNap += claim.count;
                if (slow && sinceNap >= 256) {
                    sinceNap = 0;
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(100));
                }
            }
        });
    }

    // The producer runs the server's bookkeeping cadence: before
    // each kReclaimEvery-publish burst, reclaim every cursor the
    // burst would lap.
    std::thread producer([&] {
        for (std::uint64_t seq = 0; seq < kPublished; ++seq) {
            if (seq % kReclaimEvery == 0)
                for (auto &cursor : cursors)
                    cursor->reclaim(*ring, kReclaimEvery);
            ring->publish(itemFor(seq));
        }
        produced.store(true, std::memory_order_release);
    });

    producer.join();
    for (auto &thread : readers)
        thread.join();

    for (unsigned r = 0; r < kReaders; ++r) {
        EXPECT_EQ(corrupt[r], 0u) << "reader " << r;
        // Every sequence was delivered or counted dropped — by the
        // reader's claim skip, its post-claim lap accounting, or the
        // producer's reclaim — exactly once.
        EXPECT_EQ(delivered[r] + cursors[r]->dropped(), kPublished)
            << "reader " << r;
    }
}

} // namespace
} // namespace ps3::transport
