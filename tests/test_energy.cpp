/**
 * @file
 * Tests for the energy subsystem: region-marker conventions, the
 * per-region EnergyAccountant (nesting, exclusive/inclusive split,
 * stray ends, re-entrancy, gap taint), live-vs-replay parity on a
 * real dump, DVFS governors, and the PowerCapCoordinator control
 * law (convergence, damping, step-up recovery).
 */

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "dut/governor.hpp"
#include "energy/accountant.hpp"
#include "energy/power_cap.hpp"
#include "energy/region.hpp"
#include "host/dump_reader.hpp"
#include "host/sim_setup.hpp"
#include "obs/registry.hpp"

namespace ps3::energy {
namespace {

// ----- region-marker conventions -----------------------------------------

TEST(RegionMarkers, CaseConventionRoundTrips)
{
    EXPECT_TRUE(isBeginMarker('A'));
    EXPECT_TRUE(isBeginMarker('Z'));
    EXPECT_FALSE(isBeginMarker('a'));
    EXPECT_TRUE(isEndMarker('a'));
    EXPECT_TRUE(isEndMarker('z'));
    EXPECT_FALSE(isEndMarker('A'));
    // Point markers stay point markers.
    EXPECT_FALSE(isBeginMarker('3'));
    EXPECT_FALSE(isEndMarker('#'));

    EXPECT_EQ(regionOf('q'), 'Q');
    EXPECT_EQ(regionOf('Q'), 'Q');
    EXPECT_EQ(beginMarker('k'), 'K');
    EXPECT_EQ(endMarker('K'), 'k');
}

// ----- accountant: direct event feed -------------------------------------

TEST(Accountant, SingleRegionMatchesManualIntegration)
{
    // watts(t) = 10 + t at 1 Hz; region A spans (1, 3].
    EnergyAccountant acc;
    acc.addSample(0.0, 10.0);
    acc.addSample(1.0, 11.0);
    acc.addMarker('A', 1.0); // resolves after its sample's interval
    acc.addSample(2.0, 12.0);
    acc.addSample(3.0, 13.0);
    acc.addMarker('a', 3.0);
    acc.addSample(4.0, 14.0);
    acc.finish();

    const auto stats = acc.snapshot();
    ASSERT_EQ(stats.size(), 1u);
    const auto &a = stats[0];
    EXPECT_EQ(a.region, 'A');
    EXPECT_EQ(a.entries, 1u);
    EXPECT_EQ(a.samples, 2u);
    EXPECT_DOUBLE_EQ(a.inclusiveSeconds, 2.0);
    EXPECT_DOUBLE_EQ(a.inclusiveJoules, 12.0 + 13.0);
    EXPECT_DOUBLE_EQ(a.exclusiveSeconds, a.inclusiveSeconds);
    EXPECT_DOUBLE_EQ(a.exclusiveJoules, a.inclusiveJoules);
    EXPECT_DOUBLE_EQ(a.minWatts, 12.0);
    EXPECT_DOUBLE_EQ(a.maxWatts, 13.0);
    EXPECT_DOUBLE_EQ(a.meanWatts(), 12.5);
    EXPECT_FALSE(a.unterminated);
    EXPECT_EQ(a.gapRecords, 0u);
    EXPECT_EQ(acc.samplesSeen(), 5u);
    EXPECT_EQ(acc.strayEndMarkers(), 0u);
}

TEST(Accountant, NestingSplitsExclusiveFromInclusive)
{
    // A spans (1, 4], child B spans (2, 3]; constant 10 W.
    EnergyAccountant acc;
    for (int t = 0; t <= 1; ++t)
        acc.addSample(t, 10.0);
    acc.addMarker('A', 1.0);
    acc.addSample(2.0, 10.0);
    acc.addMarker('B', 2.0);
    acc.addSample(3.0, 10.0);
    acc.addMarker('b', 3.0);
    acc.addSample(4.0, 10.0);
    acc.addMarker('a', 4.0);
    acc.addSample(5.0, 10.0);
    acc.finish();

    const auto stats = acc.snapshot();
    ASSERT_EQ(stats.size(), 2u);
    const auto &a = stats[0];
    const auto &b = stats[1];
    EXPECT_DOUBLE_EQ(a.inclusiveSeconds, 3.0);
    EXPECT_DOUBLE_EQ(a.inclusiveJoules, 30.0);
    EXPECT_DOUBLE_EQ(a.exclusiveSeconds, 2.0); // (1,2] and (3,4]
    EXPECT_DOUBLE_EQ(a.exclusiveJoules, 20.0);
    EXPECT_DOUBLE_EQ(b.inclusiveSeconds, 1.0);
    EXPECT_DOUBLE_EQ(b.exclusiveSeconds, 1.0);
    // Exclusive shares partition the parent's inclusive window.
    EXPECT_DOUBLE_EQ(a.exclusiveJoules + b.inclusiveJoules,
                     a.inclusiveJoules);
}

TEST(Accountant, ReentrantRegionCountsTimeOnce)
{
    // A opened twice before closing: nested self-entry must not
    // double-count the overlap.
    EnergyAccountant acc;
    acc.addSample(0.0, 10.0);
    acc.addSample(1.0, 10.0);
    acc.addMarker('A', 1.0);
    acc.addSample(2.0, 10.0);
    acc.addMarker('A', 2.0);
    acc.addSample(3.0, 10.0);
    acc.addMarker('a', 3.0);
    acc.addSample(4.0, 10.0);
    acc.addMarker('a', 4.0);
    acc.finish();

    const auto stats = acc.snapshot();
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].entries, 2u);
    EXPECT_DOUBLE_EQ(stats[0].inclusiveSeconds, 3.0); // (1,4] once
    EXPECT_DOUBLE_EQ(stats[0].exclusiveSeconds, 3.0);
    EXPECT_FALSE(stats[0].unterminated);
    EXPECT_EQ(acc.strayEndMarkers(), 0u);
}

TEST(Accountant, RepeatedEntriesAccumulate)
{
    EnergyAccountant acc;
    acc.addSample(0.0, 10.0);
    acc.addSample(1.0, 10.0);
    acc.addMarker('A', 1.0);
    acc.addSample(2.0, 10.0);
    acc.addMarker('a', 2.0);
    acc.addSample(3.0, 10.0);
    acc.addMarker('A', 3.0);
    acc.addSample(4.0, 10.0);
    acc.addMarker('a', 4.0);
    acc.finish();

    const auto stats = acc.snapshot();
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].entries, 2u);
    EXPECT_DOUBLE_EQ(stats[0].inclusiveSeconds, 2.0);
    EXPECT_DOUBLE_EQ(stats[0].inclusiveJoules, 20.0);
}

TEST(Accountant, StrayEndsAndPointMarkersAreIgnored)
{
    EnergyAccountant acc;
    acc.addSample(0.0, 10.0);
    acc.addSample(1.0, 10.0);
    acc.addMarker('a', 1.0); // nothing open
    acc.addMarker('3', 1.0); // point marker, not a region
    acc.addSample(2.0, 10.0);
    acc.finish();

    EXPECT_TRUE(acc.snapshot().empty());
    EXPECT_EQ(acc.strayEndMarkers(), 1u);
}

TEST(Accountant, UnterminatedRegionClosesAtLastSample)
{
    EnergyAccountant acc;
    acc.addSample(0.0, 10.0);
    acc.addSample(1.0, 10.0);
    acc.addMarker('A', 1.0);
    acc.addSample(2.0, 10.0);
    acc.addSample(3.0, 10.0);
    acc.finish();

    const auto stats = acc.snapshot();
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_TRUE(stats[0].unterminated);
    EXPECT_DOUBLE_EQ(stats[0].inclusiveSeconds, 2.0); // (1, 3]
}

TEST(Accountant, GapsTaintOpenRegionsOnly)
{
    EnergyAccountant acc;
    acc.addGap(7); // before any region: lost
    acc.addSample(0.0, 10.0);
    acc.addSample(1.0, 10.0);
    acc.addMarker('A', 1.0);
    acc.addGap(5);
    acc.addSample(2.0, 10.0);
    acc.addMarker('a', 2.0);
    acc.addGap(3); // after close: not A's problem
    acc.addSample(3.0, 10.0);
    acc.finish();

    const auto stats = acc.snapshot();
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].gapRecords, 5u);
    // The interval spanning the hole still integrates through.
    EXPECT_DOUBLE_EQ(stats[0].inclusiveJoules, 10.0);
}

TEST(Accountant, FormatRegionTableFlagsTaint)
{
    EnergyAccountant acc;
    acc.addSample(0.0, 10.0);
    acc.addSample(1.0, 10.0);
    acc.addMarker('A', 1.0);
    acc.addGap(4);
    acc.addSample(2.0, 10.0);
    acc.finish();

    const auto table = formatRegionTable(acc.snapshot());
    EXPECT_NE(table.find("A"), std::string::npos);
    EXPECT_NE(table.find("unterminated"), std::string::npos);
    EXPECT_NE(table.find("gaps=4"), std::string::npos);
    EXPECT_TRUE(formatRegionTable({}).empty());
}

// ----- offline replay vs the dump reader ---------------------------------

TEST(AccountantReplay, RegionEnergyEqualsDumpFileEnergy)
{
    const std::string path =
        "/tmp/ps3_energy_replay."
        + std::to_string(static_cast<long>(::getpid())) + ".txt";
    {
        std::ofstream out(path);
        out << "# sample_rate_hz 10\n";
        for (int i = 0; i <= 10; ++i) {
            const double t = 0.1 * i;
            const double watts = 12.0 + i;
            out << "S " << t << " 12.0 " << watts / 12.0 << " "
                << watts << " " << watts << "\n";
        }
        out << "M B 0.2\nM b 0.7\nM B 0.8\n"; // second entry open
    }
    const auto file = host::DumpFile::load(path);
    std::filesystem::remove(path);

    EnergyAccountant acc;
    acc.replay(file);
    const auto stats = acc.snapshot();
    ASSERT_EQ(stats.size(), 1u);
    const auto &b = stats[0];
    EXPECT_EQ(b.entries, 2u);
    EXPECT_TRUE(b.unterminated);
    // The closed span plus the unterminated tail, integrated exactly
    // as the reader integrates them.
    EXPECT_NEAR(b.inclusiveJoules,
                file.energy(0.2, 0.7) + file.energy(0.8, 1.0), 1e-9);
    EXPECT_EQ(acc.samplesSeen(), file.samples().size());
}

// ----- live listener vs offline replay on the same stream ----------------

TEST(AccountantLive, LiveAttributionMatchesOfflineReplay)
{
    const std::string path =
        "/tmp/ps3_energy_live."
        + std::to_string(static_cast<long>(::getpid())) + ".txt";
    auto rig = host::rigs::labBench(analog::modules::slot12V10A(),
                                    12.0, 5.0);
    auto sensor = rig.connect();

    // Marker requests resolve on a *future* sample, so fixed tail
    // waits race a reader thread that ran ahead; keep the dump (and
    // the live fold) running until both end markers actually landed.
    auto &closed = obs::Registry::global().counter(
        "ps3_energy_regions_closed_total",
        "Region end markers applied");
    const auto closed_before = closed.value();

    EnergyAccountant live;
    live.attach(*sensor);
    sensor->dump(path);
    {
        RegionScope outer(*sensor, 'R');
        sensor->waitForSamples(2000);
        {
            RegionScope inner(*sensor, 'S');
            sensor->waitForSamples(2000);
        }
        sensor->waitForSamples(1000);
    }
    for (int spins = 0;
         closed.value() < closed_before + 2 && spins < 100; ++spins)
        sensor->waitForSamples(500);
    ASSERT_GE(closed.value(), closed_before + 2);
    sensor->dump("");
    live.detach();
    live.finish();

    EnergyAccountant replayed;
    replayed.replay(host::DumpFile::load(path));
    std::filesystem::remove(path);

    const auto live_stats = live.snapshot();
    const auto replay_stats = replayed.snapshot();
    ASSERT_EQ(live_stats.size(), 2u);
    ASSERT_EQ(replay_stats.size(), 2u);
    for (std::size_t i = 0; i < live_stats.size(); ++i) {
        const auto &l = live_stats[i];
        const auto &r = replay_stats[i];
        EXPECT_EQ(l.region, r.region);
        EXPECT_EQ(l.entries, r.entries);
        EXPECT_EQ(l.samples, r.samples);
        EXPECT_FALSE(l.unterminated);
        EXPECT_NEAR(l.inclusiveSeconds, r.inclusiveSeconds, 1e-4);
        EXPECT_NEAR(l.exclusiveSeconds, r.exclusiveSeconds, 1e-4);
        // The text dump rounds V/I/P, so energies agree to the
        // rounding, not bit-exactly.
        EXPECT_NEAR(l.inclusiveJoules, r.inclusiveJoules,
                    0.01 * r.inclusiveJoules + 1e-6);
        EXPECT_NEAR(l.exclusiveJoules, r.exclusiveJoules,
                    0.01 * r.exclusiveJoules + 1e-6);
    }
    // Nested S owns part of R's window.
    EXPECT_NEAR(live_stats[0].exclusiveJoules
                    + live_stats[1].inclusiveJoules,
                live_stats[0].inclusiveJoules,
                0.01 * live_stats[0].inclusiveJoules);
}

// ----- governors ----------------------------------------------------------

TEST(Governors, LadderScalesAreMonotonic)
{
    const auto ladder =
        dut::makeLadder(3600.0, 1.05, 1200.0, 0.75, 8);
    ASSERT_EQ(ladder.size(), 8u);
    EXPECT_DOUBLE_EQ(ladder.front().freqMHz, 3600.0);
    EXPECT_DOUBLE_EQ(ladder.back().freqMHz, 1200.0);

    double applied = 0.0;
    dut::DvfsGovernor gov("cpu", ladder,
                          [&applied](double s) { applied = s; });
    EXPECT_DOUBLE_EQ(applied, 1.0); // applied once on construction
    EXPECT_EQ(gov.levelCount(), 8u);
    EXPECT_DOUBLE_EQ(gov.levelScale(0), 1.0);
    for (unsigned l = 1; l < gov.levelCount(); ++l)
        EXPECT_LT(gov.levelScale(l), gov.levelScale(l - 1));
    // f * V^2 law at the floor.
    EXPECT_NEAR(gov.levelScale(7),
                (1200.0 / 3600.0) * (0.75 / 1.05) * (0.75 / 1.05),
                1e-12);
}

TEST(Governors, StepsApplyScalesAndSaturate)
{
    double applied = -1.0;
    dut::DvfsGovernor gov("g",
                          dut::makeLadder(2000.0, 1.0, 1000.0, 0.8, 3),
                          [&applied](double s) { applied = s; });
    EXPECT_FALSE(gov.stepUp()); // already at the top
    EXPECT_TRUE(gov.stepDown());
    EXPECT_EQ(gov.level(), 1u);
    EXPECT_DOUBLE_EQ(applied, gov.levelScale(1));
    EXPECT_TRUE(gov.stepDown());
    EXPECT_FALSE(gov.stepDown()); // at the floor
    EXPECT_EQ(gov.level(), 2u);
    EXPECT_TRUE(gov.stepUp());
    EXPECT_DOUBLE_EQ(applied, gov.levelScale(1));
}

TEST(Governors, RejectsNonMonotonicLadders)
{
    EXPECT_THROW(dut::DvfsGovernor("bad", {}, [](double) {}),
                 UsageError);
    // Rising f*V^2 midway is not a ladder.
    EXPECT_THROW(
        dut::DvfsGovernor("bad",
                          {{2000.0, 1.0}, {1000.0, 0.8},
                           {1800.0, 1.0}},
                          [](double) {}),
        UsageError);
}

TEST(Governors, ModelFactoriesDriveTheirModels)
{
    dut::CpuDutModel cpu(dut::CpuSpec::server16Core());
    cpu.setProgram({{0.0, 1e9, cpu.spec().cores, 1.0}});
    auto gov = dut::makeCpuGovernor(cpu);
    const double full = cpu.truePower(1.0);
    while (gov->stepDown())
        ;
    const double floor = cpu.truePower(1.0);
    EXPECT_LT(floor, full);
    // Idle power is not governed: the floor stays above idle.
    EXPECT_GT(floor, cpu.spec().idlePower);
}

// ----- the capping control law -------------------------------------------

/** Three governed members with a linear plant: idle + dyn * scale. */
struct CapBench
{
    static constexpr double kIdle[3] = {20.0, 15.0, 5.0};
    static constexpr double kDyn[3] = {70.0, 80.0, 30.0};

    CapBench(CapPolicy policy) : cap(policy)
    {
        for (int m = 0; m < 3; ++m) {
            govs.emplace_back(std::make_unique<dut::DvfsGovernor>(
                "m" + std::to_string(m),
                dut::makeLadder(3600.0, 1.05, 1200.0, 0.75, 16),
                [this, m](double s) { scale[m] = s; }));
            cap.addMember(govs.back()->name(), *govs.back());
        }
    }

    double watts(int m) const { return kIdle[m] + kDyn[m] * scale[m]; }

    /** Stream `seconds` of 20 kHz observations. */
    void
    run(double seconds, double start = 0.0)
    {
        const double dt = 50e-6;
        const auto ticks = static_cast<long>(seconds / dt);
        for (long i = 1; i <= ticks; ++i) {
            const double t = start + dt * i;
            for (int m = 0; m < 3; ++m)
                cap.observe(m, t, watts(m));
        }
    }

    double scale[3] = {1.0, 1.0, 1.0};
    std::vector<std::unique_ptr<dut::DvfsGovernor>> govs;
    PowerCapCoordinator cap;
};

TEST(PowerCap, ConvergesUnderBudgetWithBoundedActuations)
{
    CapPolicy policy;
    policy.budgetWatts = 150.0; // uncapped plant: 220 W
    CapBench bench(policy);
    bench.run(1.0);

    const auto status = bench.cap.status();
    EXPECT_EQ(status.observations, 3u * 20000u);
    EXPECT_GT(status.stepDowns, 0u);
    // Feedback latency and convergence, in stream time.
    EXPECT_GE(status.firstStepDownAfter, 0.0);
    EXPECT_LT(status.firstStepDownAfter, 0.05);
    EXPECT_GE(status.secondsToConverge, 0.0);
    EXPECT_LT(status.secondsToConverge, 0.5);
    // Holds the band without grinding the governors.
    const double band =
        policy.budgetWatts * policy.deadbandFraction;
    EXPECT_LE(status.filteredWatts, policy.budgetWatts + band + 0.5);
    EXPECT_GE(status.filteredWatts, 135.0); // not over-throttled
    EXPECT_LE(status.stepDowns + status.stepUps, 3u * 16u * 2u);
    EXPECT_TRUE(status.converged);
}

TEST(PowerCap, GenerousBudgetNeverActuates)
{
    CapPolicy policy;
    policy.budgetWatts = 400.0; // far above the 220 W plant
    CapBench bench(policy);
    bench.run(0.5);

    const auto status = bench.cap.status();
    EXPECT_EQ(status.stepDowns, 0u);
    EXPECT_EQ(status.stepUps, 0u);
    EXPECT_TRUE(status.converged);
    // No excursion above the band: nothing to converge *from*.
    EXPECT_LT(status.secondsToConverge, 0.0);
}

TEST(PowerCap, RaisedBudgetRecoversWithoutOvershoot)
{
    CapPolicy policy;
    policy.budgetWatts = 120.0;
    CapBench bench(policy);
    bench.run(1.0);
    const auto throttled = bench.cap.status();
    ASSERT_GT(throttled.stepDowns, 0u);
    const double throttled_watts = throttled.filteredWatts;

    // Raise the budget: the loop must step back up, one damped step
    // per hold period, never crossing the new budget.
    bench.cap.setBudget(200.0);
    bench.run(2.0, 1.0);
    const auto status = bench.cap.status();
    EXPECT_GT(status.stepUps, 3u);
    EXPECT_GT(status.filteredWatts, throttled_watts);
    EXPECT_LE(status.maxFilteredWatts, 200.0 + 1.0);
    // Budget replaced after the excursion: convergence tracking
    // restarted, and no new excursion happened.
    EXPECT_LT(status.secondsToConverge, 0.0);
}

} // namespace
} // namespace ps3::energy
