/**
 * @file
 * Unit and integration tests for the auto-tuner: search space
 * enumeration, the beamformer performance/power model, both
 * measurement strategies, and Pareto-front extraction.
 */

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "host/sim_setup.hpp"
#include "pmt/vendor_sim.hpp"
#include "tuner/auto_tuner.hpp"

namespace ps3::tuner {
namespace {

TEST(SearchSpaceTest, EnumeratesCartesianProduct)
{
    SearchSpace space;
    space.add("a", {1, 2, 3}).add("b", {10, 20});
    const auto configs = space.enumerate();
    EXPECT_EQ(configs.size(), 6u);
    std::set<std::pair<int, int>> seen;
    for (const auto &config : configs)
        seen.insert({config.at("a"), config.at("b")});
    EXPECT_EQ(seen.size(), 6u);
}

TEST(SearchSpaceTest, ConstraintsFilter)
{
    SearchSpace space;
    space.add("a", {1, 2, 3, 4})
        .add("b", {1, 2, 3, 4})
        .restrict([](const Configuration &c) {
            return c.at("a") * c.at("b") <= 4;
        });
    const auto configs = space.enumerate();
    for (const auto &config : configs)
        EXPECT_LE(config.at("a") * config.at("b"), 4);
    EXPECT_EQ(configs.size(), 8u); // (1,1..4),(2,1..2),(3,1),(4,1)
}

TEST(SearchSpaceTest, Validation)
{
    SearchSpace space;
    EXPECT_THROW(space.add("x", {}), UsageError);
    EXPECT_THROW(space.restrict(nullptr), UsageError);
    EXPECT_TRUE(space.enumerate().empty());
}

TEST(SearchSpaceTest, BeamformerSpaceHas512Variants)
{
    const auto configs =
        SearchSpace::beamformerSpace().enumerate();
    EXPECT_EQ(configs.size(), 512u);
}

TEST(BeamformerModelTest, CalibratedToPaperHeadline)
{
    BeamformerModel model(dut::GpuSpec::rtx4000Ada());
    // The best variant at boost clock must land near the paper's
    // 80.4 TFLOP/s fastest Pareto point.
    double best_tflops = 0.0;
    for (const auto &config :
         SearchSpace::beamformerSpace().enumerate()) {
        const auto p = model.predict(config, 2175.0);
        best_tflops = std::max(best_tflops, p.tflops);
    }
    EXPECT_NEAR(best_tflops, 80.4, 5.0);
}

TEST(BeamformerModelTest, MonotonicInClock)
{
    BeamformerModel model(dut::GpuSpec::rtx4000Ada());
    const auto config =
        SearchSpace::beamformerSpace().enumerate().front();
    double last_tflops = 0.0;
    double last_watts = 0.0;
    for (double clock : model.clockRangeMHz()) {
        const auto p = model.predict(config, clock);
        EXPECT_GT(p.tflops, last_tflops);
        EXPECT_GT(p.watts, last_watts);
        last_tflops = p.tflops;
        last_watts = p.watts;
    }
}

TEST(BeamformerModelTest, ClockRangeSpansTheTunedBand)
{
    BeamformerModel model(dut::GpuSpec::rtx4000Ada());
    const auto clocks = model.clockRangeMHz();
    ASSERT_EQ(clocks.size(), 10u); // paper: 10 clock frequencies
    EXPECT_NEAR(clocks.back(), 2175.0, 1e-9);
    EXPECT_GT(clocks.front(), 1400.0);
    EXPECT_LT(clocks.front(), clocks.back());
}

TEST(BeamformerModelTest, EfficiencyBoundedAndDeterministic)
{
    BeamformerModel model(dut::GpuSpec::rtx4000Ada());
    for (const auto &config :
         SearchSpace::beamformerSpace().enumerate()) {
        const double e1 = model.efficiency(config);
        const double e2 = model.efficiency(config);
        EXPECT_DOUBLE_EQ(e1, e2);
        EXPECT_GT(e1, 0.0);
        EXPECT_LE(e1, 1.0);
    }
}

TEST(BeamformerModelTest, PowerCappedAtBoardLimit)
{
    const auto spec = dut::GpuSpec::rtx4000Ada();
    BeamformerModel model(spec);
    for (const auto &config :
         SearchSpace::beamformerSpace().enumerate()) {
        const auto p = model.predict(config, 2175.0);
        EXPECT_LE(p.watts, spec.powerLimit + 1e-9);
        EXPECT_GT(p.watts, spec.idlePower);
    }
}

TEST(BeamformerModelTest, RejectsInvalidInputs)
{
    BeamformerModel model(dut::GpuSpec::rtx4000Ada());
    const auto config =
        SearchSpace::beamformerSpace().enumerate().front();
    EXPECT_THROW(model.predict(config, 0.0), UsageError);
    EXPECT_THROW(model.predict(config, 5000.0), UsageError);
    Configuration bad = config;
    bad["block_warps"] = 3; // not in the space
    EXPECT_THROW(model.predict(bad, 2000.0), UsageError);
}

TEST(BeamformerModelTest, ProblemFlops)
{
    BeamformerProblem problem;
    EXPECT_DOUBLE_EQ(problem.flops(),
                     8.0 * 4096.0 * 4096.0 * 4096.0);
}

/** A tiny space keeps the measured tuning tests fast. */
SearchSpace
tinySpace()
{
    SearchSpace space;
    space.add("block_warps", {4, 8})
        .add("block_y", {2})
        .add("frags_per_block", {4})
        .add("frags_per_warp", {1, 2})
        .add("double_buffer", {1});
    return space;
}

TEST(AutoTunerTest, ExternalStrategyMeasuresThroughPowerSensor)
{
    const auto spec = dut::GpuSpec::rtx4000Ada().tuningVariant();
    auto rig = host::rigs::gpuRig(spec);
    auto sensor = rig.connect();

    BeamformerModel model(spec);
    TuningOptions options;
    options.strategy = MeasurementStrategy::ExternalSensor;
    AutoTuner tuner(*rig.gpu, *rig.firmware, sensor.get(), nullptr,
                    model, options);
    const auto result = tuner.tune(tinySpace());

    ASSERT_EQ(result.records.size(), 4u * 10u);
    EXPECT_EQ(result.meterName, "PowerSensor3");
    for (const auto &r : result.records) {
        // Measured energy must agree with the model's power x time
        // within sensor accuracy.
        const auto predicted =
            model.predict(r.config, r.clockMHz);
        EXPECT_GT(r.energyJoules, 0.0);
        EXPECT_NEAR(r.avgPowerWatts, predicted.watts,
                    0.06 * predicted.watts + 1.0);
        EXPECT_GT(r.tflopPerJoule, 0.0);
        EXPECT_GT(r.accountedSeconds,
                  options.perConfigOverheadSeconds);
    }
    EXPECT_GT(result.totalTuningSeconds, 0.0);
}

TEST(AutoTunerTest, OnboardStrategyCostsExtendedRuns)
{
    const auto spec = dut::GpuSpec::rtx4000Ada().tuningVariant();
    auto rig = host::rigs::gpuRig(spec);

    BeamformerModel model(spec);
    auto nvml = pmt::makeNvmlMeter(*rig.gpu, rig.firmware->clock(),
                                   pmt::NvmlMode::Instant);
    TuningOptions options;
    options.strategy = MeasurementStrategy::OnboardSensor;
    AutoTuner tuner(*rig.gpu, *rig.firmware, nullptr, nvml.get(),
                    model, options);
    const auto result = tuner.tune(tinySpace());

    ASSERT_EQ(result.records.size(), 40u);
    for (const auto &r : result.records) {
        const auto predicted = model.predict(r.config, r.clockMHz);
        EXPECT_NEAR(r.avgPowerWatts, predicted.watts,
                    0.10 * predicted.watts + 1.0);
        // Each config pays the extended continuous run.
        EXPECT_GT(r.accountedSeconds,
                  options.onboardExtendedRunSeconds);
    }
}

TEST(AutoTunerTest, StrategyPrerequisitesChecked)
{
    const auto spec = dut::GpuSpec::rtx4000Ada().tuningVariant();
    auto rig = host::rigs::gpuRig(spec);
    BeamformerModel model(spec);
    TuningOptions external;
    external.strategy = MeasurementStrategy::ExternalSensor;
    EXPECT_THROW(AutoTuner(*rig.gpu, *rig.firmware, nullptr, nullptr,
                           model, external),
                 UsageError);
    TuningOptions onboard;
    onboard.strategy = MeasurementStrategy::OnboardSensor;
    EXPECT_THROW(AutoTuner(*rig.gpu, *rig.firmware, nullptr, nullptr,
                           model, onboard),
                 UsageError);
}

TEST(AutoTunerTest, ParetoFrontIsNonDominatedAndOrdered)
{
    std::vector<MeasurementRecord> records(5);
    records[0].tflops = 80;
    records[0].tflopPerJoule = 0.8;
    records[1].tflops = 70;
    records[1].tflopPerJoule = 0.9; // on the front
    records[2].tflops = 75;
    records[2].tflopPerJoule = 0.7; // dominated by 0
    records[3].tflops = 60;
    records[3].tflopPerJoule = 0.95; // on the front
    records[4].tflops = 60;
    records[4].tflopPerJoule = 0.85; // dominated by 3

    const auto front = AutoTuner::paretoFront(records);
    ASSERT_EQ(front.size(), 3u);
    EXPECT_EQ(front[0], 0u);
    EXPECT_EQ(front[1], 1u);
    EXPECT_EQ(front[2], 3u);
    // Descending performance, ascending efficiency.
    for (std::size_t i = 1; i < front.size(); ++i) {
        EXPECT_LT(records[front[i]].tflops,
                  records[front[i - 1]].tflops);
        EXPECT_GT(records[front[i]].tflopPerJoule,
                  records[front[i - 1]].tflopPerJoule);
    }
}

TEST(AutoTunerTest, EmptySpaceRejected)
{
    const auto spec = dut::GpuSpec::rtx4000Ada().tuningVariant();
    auto rig = host::rigs::gpuRig(spec);
    auto sensor = rig.connect();
    BeamformerModel model(spec);
    TuningOptions options;
    AutoTuner tuner(*rig.gpu, *rig.firmware, sensor.get(), nullptr,
                    model, options);
    SearchSpace empty;
    EXPECT_THROW(tuner.tune(empty), UsageError);
}

} // namespace
} // namespace ps3::tuner
