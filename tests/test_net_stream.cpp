/**
 * @file
 * Network streaming subsystem tests: wire codec round trips,
 * handshake fault handling, multi-subscriber fan-out semantics
 * (Block zero-loss, DropOldest accounting), and the NetPowerSensor
 * client end-to-end against a simulated rig served by Ps3Server.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "analog/sensor_module_spec.hpp"
#include "common/errors.hpp"
#include "host/sim_setup.hpp"
#include "net/net_power_sensor.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "obs/registry.hpp"
#include "transport/faulty_socket.hpp"
#include "transport/socket_device.hpp"

namespace ps3 {
namespace {

using transport::Endpoint;
using transport::RingOverflow;

/** Unique Unix-socket path per test (sockets are process-scoped). */
std::string
socketPath()
{
    static std::atomic<int> counter{0};
    return "/tmp/ps3_net_test_" + std::to_string(::getpid()) + "_"
           + std::to_string(counter.fetch_add(1)) + ".sock";
}

/** A recognisable sensor configuration for codec tests. */
firmware::DeviceConfig
testConfig()
{
    firmware::DeviceConfig config{};
    config[0].inUse = true;
    config[0].name = "12V-10A";
    config[0].vref = 1.65;
    config[0].slope = 0.11;
    config[1].inUse = true;
    config[1].slope = 0.09;
    return config;
}

host::DumpRecord
testRecord(double time, std::uint8_t mask, bool marker = false)
{
    host::DumpRecord record;
    record.time = time;
    for (unsigned pair = 0; pair < host::kMaxPairs; ++pair) {
        record.voltage[pair] = 12.0 + pair;
        record.current[pair] = 0.5 * pair;
    }
    record.presentMask = mask;
    record.marker = marker;
    record.markerChar = marker ? 'X' : '\0';
    return record;
}

/** Collects decoded records for codec tests. */
struct Collector
{
    std::vector<host::DumpRecord> records;
    static void
    onRecord(void *self, const host::DumpRecord &record)
    {
        static_cast<Collector *>(self)->records.push_back(record);
    }
};

// ----- Endpoint parsing --------------------------------------------------

TEST(NetEndpoint, ParsesTcpAndUnixUris)
{
    const auto tcp = Endpoint::parse("tcp://127.0.0.1:9151");
    EXPECT_EQ(tcp.kind, Endpoint::Kind::Tcp);
    EXPECT_EQ(tcp.host, "127.0.0.1");
    EXPECT_EQ(tcp.port, 9151);
    EXPECT_EQ(tcp.describe(), "tcp://127.0.0.1:9151");

    const auto unx = Endpoint::parse("unix:///tmp/ps3.sock");
    EXPECT_EQ(unx.kind, Endpoint::Kind::Unix);
    EXPECT_EQ(unx.path, "/tmp/ps3.sock");
    EXPECT_EQ(unx.describe(), "unix:///tmp/ps3.sock");
}

TEST(NetEndpoint, RejectsMalformedUris)
{
    EXPECT_THROW(Endpoint::parse("http://x:1"), UsageError);
    EXPECT_THROW(Endpoint::parse("tcp://nohost"), UsageError);
    EXPECT_THROW(Endpoint::parse("tcp://h:notaport"), UsageError);
    EXPECT_THROW(Endpoint::parse("tcp://h:99999"), UsageError);
    EXPECT_THROW(Endpoint::parse("unix://relative.sock"),
                 UsageError);
}

// ----- Wire codec --------------------------------------------------------

TEST(NetWire, ClientHelloRoundTrip)
{
    for (const auto policy :
         {RingOverflow::Block, RingOverflow::DropOldest}) {
        net::ClientHello hello{net::kProtocolVersion, policy};
        const auto bytes = hello.encode();
        ASSERT_EQ(bytes.size(), net::kClientHelloSize);
        auto reject = net::HelloStatus::Ok;
        const auto decoded = net::ClientHello::decode(
            bytes.data(), bytes.size(), reject);
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(decoded->overflow, policy);
    }
}

TEST(NetWire, ClientHelloRejectsBadInput)
{
    auto reject = net::HelloStatus::Ok;

    const std::uint8_t garbage[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    EXPECT_FALSE(net::ClientHello::decode(garbage, sizeof(garbage),
                                          reject));
    EXPECT_EQ(reject, net::HelloStatus::BadMagic);

    net::ClientHello hello;
    auto bytes = hello.encode();
    EXPECT_FALSE(net::ClientHello::decode(bytes.data(), 3, reject));
    EXPECT_EQ(reject, net::HelloStatus::BadHello);

    bytes[4] = 99; // future protocol version
    EXPECT_FALSE(net::ClientHello::decode(bytes.data(), bytes.size(),
                                          reject));
    EXPECT_EQ(reject, net::HelloStatus::VersionMismatch);
}

TEST(NetWire, ServerHelloRoundTrip)
{
    net::ServerHello hello;
    hello.sampleRateHz = firmware::kSampleRateHz;
    hello.firmwareVersion = "PS3-sim-1.2";
    hello.config = testConfig();
    const auto bytes = hello.encode();

    net::ServerHello decoded;
    const std::size_t payload_len = net::ServerHello::decodePrefix(
        bytes.data(), bytes.size(), decoded);
    ASSERT_EQ(payload_len,
              bytes.size() - net::kServerHelloPrefixSize);
    ASSERT_EQ(decoded.status, net::HelloStatus::Ok);
    decoded.decodePayload(bytes.data() + net::kServerHelloPrefixSize,
                          payload_len);
    EXPECT_EQ(decoded.sampleRateHz, firmware::kSampleRateHz);
    EXPECT_EQ(decoded.firmwareVersion, "PS3-sim-1.2");
    EXPECT_EQ(decoded.config[0].name, "12V-10A");
    EXPECT_TRUE(decoded.config[1].inUse);
    // The CFG1 blob stores calibration values as f32.
    EXPECT_NEAR(decoded.config[0].vref, 1.65, 1e-6);
}

TEST(NetWire, ServerHelloRejectionHasEmptyPayload)
{
    net::ServerHello nack;
    nack.status = net::HelloStatus::ServerFull;
    const auto bytes = nack.encode();
    EXPECT_EQ(bytes.size(), net::kServerHelloPrefixSize);

    net::ServerHello decoded;
    EXPECT_EQ(net::ServerHello::decodePrefix(bytes.data(),
                                             bytes.size(), decoded),
              0u);
    EXPECT_EQ(decoded.status, net::HelloStatus::ServerFull);
}

TEST(NetWire, RecordBatchRoundTrip)
{
    std::vector<std::uint8_t> payload;
    net::encodeRecord(payload, testRecord(1.25, 0x01));
    net::encodeRecord(payload, testRecord(1.50, 0x05, true));
    net::encodeRecord(payload, testRecord(1.75, 0x00));

    net::RecordDecoder decoder;
    Collector collector;
    decoder.feed(payload.data(), payload.size(), &collector,
                 &Collector::onRecord);

    ASSERT_EQ(collector.records.size(), 3u);
    EXPECT_EQ(decoder.recordCount(), 3u);
    EXPECT_DOUBLE_EQ(collector.records[0].time, 1.25);
    EXPECT_EQ(collector.records[0].presentMask, 0x01);
    EXPECT_FALSE(collector.records[0].marker);
    EXPECT_DOUBLE_EQ(collector.records[0].voltage[0], 12.0);
    EXPECT_DOUBLE_EQ(collector.records[0].current[0], 0.0);

    EXPECT_TRUE(collector.records[1].marker);
    EXPECT_EQ(collector.records[1].markerChar, 'X');
    EXPECT_EQ(collector.records[1].presentMask, 0x05);
    EXPECT_DOUBLE_EQ(collector.records[1].voltage[2], 14.0);
    EXPECT_DOUBLE_EQ(collector.records[1].current[2], 1.0);

    EXPECT_EQ(collector.records[2].presentMask, 0x00);
}

TEST(NetWire, DecoderRejectsMalformedBatches)
{
    net::RecordDecoder decoder;
    Collector collector;

    const std::uint8_t unknown[] = {'Q', 0, 0};
    EXPECT_THROW(decoder.feed(unknown, sizeof(unknown), &collector,
                              &Collector::onRecord),
                 DeviceError);

    std::vector<std::uint8_t> truncated;
    net::encodeRecord(truncated, testRecord(1.0, 0x03));
    net::RecordDecoder decoder2;
    EXPECT_THROW(decoder2.feed(truncated.data(),
                               truncated.size() - 5, &collector,
                               &Collector::onRecord),
                 DeviceError);
}

// ----- handshake fault handling ------------------------------------------

/** Raw client: connect, send arbitrary hello bytes, read the reply. */
net::HelloStatus
rawHandshake(const Endpoint &endpoint,
             const std::vector<std::uint8_t> &hello_bytes)
{
    auto socket = transport::SocketDevice::connect(endpoint, 2.0);
    if (!hello_bytes.empty())
        socket->write(hello_bytes.data(), hello_bytes.size());
    std::uint8_t prefix[net::kServerHelloPrefixSize];
    std::size_t got = 0;
    const auto deadline = std::chrono::steady_clock::now()
                          + std::chrono::seconds(10);
    while (got < sizeof(prefix)) {
        got += socket->read(prefix + got, sizeof(prefix) - got, 0.1);
        if (socket->closed()
            || std::chrono::steady_clock::now() > deadline)
            break;
    }
    if (got < sizeof(prefix))
        return net::HelloStatus::BadHello; // connection just dropped
    net::ServerHello reply;
    net::ServerHello::decodePrefix(prefix, sizeof(prefix), reply);
    return reply.status;
}

TEST(NetServer, SurvivesHostileHandshakes)
{
    net::Ps3Server::Options options;
    options.handshakeTimeout = 0.3;
    net::Ps3Server server(testConfig(), "fw-test", options);
    const auto endpoint =
        server.listen(Endpoint::parse("unix://" + socketPath()));

    // Wrong magic.
    EXPECT_EQ(rawHandshake(endpoint, {1, 2, 3, 4, 5, 6, 7, 8}),
              net::HelloStatus::BadMagic);

    // Wrong protocol version.
    {
        net::ClientHello hello;
        auto bytes = hello.encode();
        bytes[4] = 99;
        EXPECT_EQ(rawHandshake(endpoint, bytes),
                  net::HelloStatus::VersionMismatch);
    }

    // Oversized garbage: way more bytes than a hello.
    {
        std::vector<std::uint8_t> blob(4096, 0xAB);
        EXPECT_EQ(rawHandshake(endpoint, blob),
                  net::HelloStatus::BadMagic);
    }

    // Mute client: connects, sends nothing, gets timed out.
    EXPECT_EQ(rawHandshake(endpoint, {}),
              net::HelloStatus::BadHello);

    // The server shrugged all of that off per-connection: a real
    // client still gets a full stream.
    net::NetPowerSensor client(endpoint);
    EXPECT_EQ(client.firmwareVersion(), "fw-test");
    const auto registered = std::chrono::steady_clock::now()
                            + std::chrono::seconds(10);
    while (server.subscriberCount() < 1
           && std::chrono::steady_clock::now() < registered)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(server.subscriberCount(), 1u);
    server.publish(testRecord(1.0, 0x01));
    server.stop();
    const auto deadline = std::chrono::steady_clock::now()
                          + std::chrono::seconds(10);
    while (client.recordsReceived() < 1
           && std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(client.recordsReceived(), 1u);
}

TEST(NetServer, RejectsWhenFull)
{
    net::Ps3Server::Options options;
    options.maxSubscribers = 1;
    net::Ps3Server server(testConfig(), "fw-test", options);
    const auto endpoint =
        server.listen(Endpoint::parse("unix://" + socketPath()));

    net::NetPowerSensor first(endpoint);
    // Wait until the server has registered the first subscriber.
    const auto deadline = std::chrono::steady_clock::now()
                          + std::chrono::seconds(10);
    while (server.subscriberCount() < 1
           && std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(server.subscriberCount(), 1u);

    EXPECT_EQ(rawHandshake(endpoint, net::ClientHello{}.encode()),
              net::HelloStatus::ServerFull);
    EXPECT_THROW(net::NetPowerSensor rejected(endpoint), DeviceError);
}

// ----- fan-out semantics -------------------------------------------------

TEST(NetServer, BlockFanoutDeliversEveryRecordToEightSubscribers)
{
    constexpr std::size_t kSubscribers = 8;
    constexpr std::uint64_t kRecords = 20000; // one second at 20 kHz

    net::Ps3Server::Options options;
    // Capacity above kRecords: Block can never overflow, so the test
    // proves zero loss however the scheduler treats the senders.
    options.queueCapacity = 1u << 15;
    net::Ps3Server server(testConfig(), "fw-test", options);
    const auto endpoint =
        server.listen(Endpoint::parse("unix://" + socketPath()));

    std::vector<std::unique_ptr<net::NetPowerSensor>> clients;
    for (std::size_t i = 0; i < kSubscribers; ++i)
        clients.push_back(
            std::make_unique<net::NetPowerSensor>(endpoint));
    const auto deadline = std::chrono::steady_clock::now()
                          + std::chrono::seconds(10);
    while (server.subscriberCount() < kSubscribers
           && std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(server.subscriberCount(), kSubscribers);

    // Publish flat out — faster than the real 20 kHz stream.
    for (std::uint64_t i = 0; i < kRecords; ++i)
        server.publish(
            testRecord(50e-6 * static_cast<double>(i), 0x01));

    // Drain-then-close hands every queued record to every client
    // before the end-of-stream frame.
    server.stop();
    for (auto &client : clients) {
        while (!client->deviceGone())
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        EXPECT_EQ(client->recordsReceived(), kRecords);
        EXPECT_EQ(client->read().sampleCount, kRecords);
    }
    EXPECT_EQ(server.recordsDropped(), 0u);
    EXPECT_EQ(server.subscribersDropped(), 0u);
}

TEST(NetServer, DropOldestStalledSubscriberIsAccountedAndIsolated)
{
    constexpr std::uint64_t kRecords = 50000;

    net::Ps3Server::Options options;
    options.queueCapacity = 1024;
    net::Ps3Server server(testConfig(), "fw-test", options);
    const auto endpoint =
        server.listen(Endpoint::parse("unix://" + socketPath()));

#ifndef PS3_OBS_DISABLE
    const auto before = obs::Registry::global().snapshot();
#endif

    // A stalled DropOldest subscriber: handshakes, then never reads.
    auto stalled = transport::SocketDevice::connect(endpoint, 2.0);
    {
        const net::ClientHello hello{net::kProtocolVersion,
                                     RingOverflow::DropOldest};
        const auto bytes = hello.encode();
        stalled->write(bytes.data(), bytes.size());
    }

    // A healthy subscriber alongside it. DropOldest too: on a loaded
    // CI box its sender thread can be starved long enough for a
    // Block queue to fill, and Block's contract would then
    // disconnect it — policy working as intended, but not what this
    // test is probing. Zero-loss delivery has its own test above.
    net::NetPowerSensor::Options healthy_options;
    healthy_options.overflow = RingOverflow::DropOldest;
    net::NetPowerSensor healthy(endpoint, healthy_options);

    auto deadline = std::chrono::steady_clock::now()
                    + std::chrono::seconds(10);
    while (server.subscriberCount() < 2
           && std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(server.subscriberCount(), 2u);

    // Publish with light pacing so the healthy subscriber's sender
    // normally keeps up; the stalled one's socket buffer and
    // 1k-record queue fill quickly and DropOldest starts reclaiming.
    for (std::uint64_t i = 0; i < kRecords; ++i) {
        server.publish(
            testRecord(50e-6 * static_cast<double>(i), 0x01));
        if ((i & 1023) == 1023)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
    }

    EXPECT_GT(server.recordsDropped(), 0u);

#ifndef PS3_OBS_DISABLE
    // The obs counter moved in lockstep with the server's tally.
    const auto after = obs::Registry::global().snapshot();
    const auto delta = obs::diff(before, after);
    const auto *dropped =
        delta.find("ps3_net_records_dropped_total");
    ASSERT_NE(dropped, nullptr);
    EXPECT_EQ(static_cast<std::uint64_t>(dropped->value),
              server.recordsDropped());
#endif

    // Kill the stalled subscriber outright; the healthy one must not
    // notice. Wait for the server to reap the dead connection, then
    // prove the healthy stream still flows end to end.
    stalled->abort();
    stalled.reset();
    deadline = std::chrono::steady_clock::now()
               + std::chrono::seconds(10);
    while (server.subscriberCount() > 1
           && std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(server.subscriberCount(), 1u);

    const std::uint64_t received_before = healthy.recordsReceived();
    server.publish(testRecord(99.0, 0x01));
    server.stop(); // drains the healthy queue, then sends EOS
    deadline = std::chrono::steady_clock::now()
               + std::chrono::seconds(10);
    while (!healthy.deviceGone()
           && std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_TRUE(healthy.deviceGone());
    EXPECT_GT(healthy.recordsReceived(), received_before);
    EXPECT_DOUBLE_EQ(healthy.read().timeAtRead, 99.0);
}

// ----- end-to-end against a simulated rig --------------------------------

TEST(NetEndToEnd, StreamsLiveSamplesAndForwardsMarkers)
{
    auto rig = host::rigs::labBench(analog::modules::slot12V10A(),
                                    12.0, 8.0);
    auto sensor = rig.connect();

    net::Ps3Server server(*sensor);
    const auto endpoint =
        server.listen(Endpoint::parse("unix://" + socketPath()));

    net::NetPowerSensor client(endpoint);
    EXPECT_EQ(client.firmwareVersion(), sensor->firmwareVersion());
    EXPECT_TRUE(client.pairPresent(0));
    EXPECT_EQ(client.pairName(0), sensor->pairName(0));
    EXPECT_EQ(client.sampleRateHz(), firmware::kSampleRateHz);
    EXPECT_THROW(client.writeConfig(client.config()), UsageError);

    // Live readings flow: ~95 W at 8 A / 12 V (supply droop).
    ASSERT_TRUE(client.waitForSamples(2000));
    const auto first = client.read();
    EXPECT_NEAR(first.voltage[0], 11.92, 0.5);
    EXPECT_NEAR(first.power(0), 95.4, 5.0);

    // Energy integrates remotely just like locally.
    ASSERT_TRUE(client.waitForSamples(2000));
    const auto second = client.read();
    EXPECT_GT(host::Joules(first, second, 0), 0.0);
    EXPECT_NEAR(host::Watts(first, second, 0), 95.4, 5.0);

    // Markers round-trip: client -> daemon -> device -> stream.
    std::atomic<int> seen{0};
    const auto token =
        client.addSampleListener([&](const host::Sample &sample) {
            if (sample.marker && sample.markerChar == 'Z')
                seen.fetch_add(1);
        });
    client.mark('Z');
    const auto deadline = std::chrono::steady_clock::now()
                          + std::chrono::seconds(10);
    while (seen.load() == 0
           && std::chrono::steady_clock::now() < deadline)
        ASSERT_TRUE(client.waitForSamples(200));
    client.removeSampleListener(token);
    EXPECT_GE(seen.load(), 1);

    // Server shutdown looks like a vanished device to the client.
    server.stop();
    while (!client.deviceGone())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_FALSE(client.waitForSamples(1u << 30));
}

TEST(NetEndToEnd, TcpLoopbackWorks)
{
    net::Ps3Server server(testConfig(), "fw-tcp");
    // Port 0: the kernel picks a free port; listen() returns it.
    const auto endpoint =
        server.listen(Endpoint::parse("tcp://127.0.0.1:0"));
    ASSERT_NE(endpoint.port, 0);

    net::NetPowerSensor client(endpoint);
    const auto deadline2 = std::chrono::steady_clock::now()
                           + std::chrono::seconds(10);
    while (server.subscriberCount() < 1
           && std::chrono::steady_clock::now() < deadline2)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(server.subscriberCount(), 1u);
    for (int i = 0; i < 100; ++i)
        server.publish(testRecord(50e-6 * i, 0x01));
    server.stop();
    while (!client.deviceGone())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(client.recordsReceived(), 100u);
}

// ----- v1.1 protocol: minor negotiation, sequences, heartbeats -----------

TEST(NetWire, ClientHelloCarriesMinorAndV10DecodesAsZero)
{
    net::ClientHello hello{net::kProtocolVersion,
                           RingOverflow::Block};
    EXPECT_EQ(hello.minor, net::kProtocolMinor);
    auto bytes = hello.encode();
    ASSERT_EQ(bytes.size(), net::kClientHelloSize);

    auto reject = net::HelloStatus::Ok;
    auto decoded =
        net::ClientHello::decode(bytes.data(), bytes.size(), reject);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->minor, net::kProtocolMinor);

    // A v1.0 client sent this byte as zero ("reserved"); it must
    // decode as minor 0, not be rejected.
    bytes[6] = 0;
    decoded =
        net::ClientHello::decode(bytes.data(), bytes.size(), reject);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->minor, 0);
}

TEST(NetWire, ServerHelloMinorTrailsPayloadAndDefaultsToZero)
{
    net::ServerHello hello;
    hello.sampleRateHz = firmware::kSampleRateHz;
    hello.firmwareVersion = "fw-minor";
    hello.config = testConfig();
    const auto bytes = hello.encode();

    net::ServerHello decoded;
    const std::size_t payload_len = net::ServerHello::decodePrefix(
        bytes.data(), bytes.size(), decoded);
    decoded.decodePayload(bytes.data() + net::kServerHelloPrefixSize,
                          payload_len);
    EXPECT_EQ(decoded.minor, net::kProtocolMinor);
    EXPECT_EQ(decoded.tier, host::Tier::Raw);

    // A v1.0 server's payload simply ends after the config blob; the
    // missing trailing bytes (minor, then tier) must decode as
    // minor 0 / Tier::Raw.
    net::ServerHello old;
    old.decodePayload(bytes.data() + net::kServerHelloPrefixSize,
                      payload_len - 2);
    EXPECT_EQ(old.minor, 0);
    EXPECT_EQ(old.tier, host::Tier::Raw);
    EXPECT_EQ(old.firmwareVersion, "fw-minor");

    // A v1.1 server's payload ends after the minor byte (no tier
    // grant): the absent tier byte decodes as Raw.
    net::ServerHello middle;
    middle.decodePayload(bytes.data() + net::kServerHelloPrefixSize,
                         payload_len - 1);
    EXPECT_EQ(middle.minor, net::kProtocolMinor);
    EXPECT_EQ(middle.tier, host::Tier::Raw);
}

TEST(NetWire, HeartbeatFrameRoundTrip)
{
    const std::uint64_t seq = 0x1122334455667788ull;
    const auto frame = net::encodeHeartbeat(seq);
    ASSERT_EQ(frame.size(), 4 + net::kHeartbeatPayloadSize);
    const std::uint32_t prefix =
        static_cast<std::uint32_t>(frame[0])
        | (static_cast<std::uint32_t>(frame[1]) << 8)
        | (static_cast<std::uint32_t>(frame[2]) << 16)
        | (static_cast<std::uint32_t>(frame[3]) << 24);
    EXPECT_EQ(prefix, net::kHeartbeatSentinel);
    EXPECT_EQ(net::readU64(frame.data() + 4), seq);

    std::vector<std::uint8_t> buffer;
    net::appendU64(buffer, seq);
    ASSERT_EQ(buffer.size(), 8u);
    EXPECT_EQ(net::readU64(buffer.data()), seq);
}

// ----- deterministic client gap accounting (raw v1.1 server) -------------

/**
 * A hand-driven single-connection server: accepts one NetPowerSensor
 * client, answers the handshake, then lets the test send crafted
 * frames — the only way to produce exact sequence skips on demand.
 */
class RawServer
{
  public:
    explicit RawServer(std::uint8_t minor)
        : listener_(Endpoint::parse("unix://" + socketPath())),
          minor_(minor)
    {
    }

    const Endpoint &
    endpoint() const
    {
        return listener_.boundEndpoint();
    }

    /** Accept + handshake (run while the client ctor blocks). A
     *  v1.2 raw server grants whatever tier the client asked for. */
    void
    acceptAndHandshake()
    {
        conn_ = listener_.accept(10.0);
        if (!conn_)
            throw DeviceError("raw server: accept timed out");
        std::uint8_t hello[net::kClientHelloSize];
        std::size_t got = 0;
        while (got < sizeof(hello) && !conn_->closed())
            got += conn_->read(hello + got, sizeof(hello) - got, 0.1);
        net::HelloStatus status = net::HelloStatus::Ok;
        const auto decoded =
            net::ClientHello::decode(hello, sizeof(hello), status);
        if (minor_ >= 2 && decoded)
            granted_ = decoded->tier;
        net::ServerHello reply;
        reply.minor = minor_;
        reply.tier = granted_;
        reply.sampleRateHz = firmware::kSampleRateHz;
        reply.firmwareVersion = "raw-test";
        reply.config = testConfig();
        const auto bytes = reply.encode();
        conn_->write(bytes.data(), bytes.size());
    }

    /** Tier granted at the handshake (Raw below v1.2). */
    host::Tier
    grantedTier() const
    {
        return granted_;
    }

    void
    sendHeartbeat(std::uint64_t next_seq)
    {
        const auto frame = net::encodeHeartbeat(next_seq);
        conn_->write(frame.data(), frame.size());
    }

    /** One batch of records; seq header included when v1.1. */
    void
    sendBatch(std::uint64_t first_seq,
              const std::vector<host::DumpRecord> &records)
    {
        std::vector<std::uint8_t> payload;
        if (minor_ >= 1)
            net::appendU64(payload, first_seq);
        for (const auto &record : records)
            net::encodeRecord(payload, record);
        const auto length =
            static_cast<std::uint32_t>(payload.size());
        std::uint8_t prefix[4] = {
            static_cast<std::uint8_t>(length & 0xFF),
            static_cast<std::uint8_t>((length >> 8) & 0xFF),
            static_cast<std::uint8_t>((length >> 16) & 0xFF),
            static_cast<std::uint8_t>((length >> 24) & 0xFF)};
        conn_->write(prefix, sizeof(prefix));
        conn_->write(payload.data(), payload.size());
    }

    /** One batch of aggregate bucket records (v1.2). */
    void
    sendBucketBatch(std::uint64_t first_seq, host::Tier tier,
                    const std::vector<host::HistoryBucket> &buckets)
    {
        std::vector<std::uint8_t> payload;
        if (minor_ >= 1)
            net::appendU64(payload, first_seq);
        for (const auto &bucket : buckets)
            net::encodeBucket(payload, tier, bucket);
        const auto length =
            static_cast<std::uint32_t>(payload.size());
        std::uint8_t prefix[4] = {
            static_cast<std::uint8_t>(length & 0xFF),
            static_cast<std::uint8_t>((length >> 8) & 0xFF),
            static_cast<std::uint8_t>((length >> 16) & 0xFF),
            static_cast<std::uint8_t>((length >> 24) & 0xFF)};
        conn_->write(prefix, sizeof(prefix));
        conn_->write(payload.data(), payload.size());
    }

    void
    sendEndOfStream()
    {
        const std::uint8_t zeros[4] = {0, 0, 0, 0};
        conn_->write(zeros, sizeof(zeros));
    }

  private:
    transport::SocketListener listener_;
    const std::uint8_t minor_;
    host::Tier granted_ = host::Tier::Raw;
    std::unique_ptr<transport::SocketDevice> conn_;
};

/** Spin until predicate() or the timeout; true on success. */
template <typename Predicate>
bool
spinUntil(Predicate predicate, double timeout_seconds = 10.0)
{
    const auto deadline =
        std::chrono::steady_clock::now()
        + std::chrono::duration<double>(timeout_seconds);
    while (!predicate()) {
        if (std::chrono::steady_clock::now() > deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
}

/** Gap events collected from a client under test. */
struct GapLog
{
    std::mutex mutex;
    std::vector<host::GapEvent> events;

    std::uint64_t
    attach(net::NetPowerSensor &client)
    {
        return client.addGapListener([this](const host::GapEvent &e) {
            std::lock_guard<std::mutex> lock(mutex);
            events.push_back(e);
        });
    }
};

TEST(NetGap, SequenceSkipEmitsExactGapEvent)
{
    RawServer raw(net::kProtocolMinor);
    std::thread server([&] { raw.acceptAndHandshake(); });
    net::NetPowerSensor::Options options;
    options.autoReconnect = false;
    net::NetPowerSensor client(raw.endpoint(), options);
    server.join();

    GapLog gaps;
    gaps.attach(client);

    // Baseline heartbeat, two records, then a skip of three.
    raw.sendHeartbeat(0);
    raw.sendBatch(0, {testRecord(1.0, 0x01), testRecord(2.0, 0x01)});
    ASSERT_TRUE(
        spinUntil([&] { return client.recordsReceived() == 2; }));
    EXPECT_EQ(client.gapEvents(), 0u);

    raw.sendBatch(5, {testRecord(3.0, 0x01)});
    ASSERT_TRUE(
        spinUntil([&] { return client.recordsReceived() == 3; }));
    EXPECT_EQ(client.gapEvents(), 1u);
    EXPECT_EQ(client.gapRecords(), 3u);
    {
        std::lock_guard<std::mutex> lock(gaps.mutex);
        ASSERT_EQ(gaps.events.size(), 1u);
        EXPECT_EQ(gaps.events[0].records, 3u);
        EXPECT_DOUBLE_EQ(gaps.events[0].spanSeconds,
                         3.0 / firmware::kSampleRateHz);
        // Gap end = last stream time + span.
        EXPECT_DOUBLE_EQ(gaps.events[0].time,
                         2.0 + 3.0 / firmware::kSampleRateHz);
    }

    raw.sendEndOfStream();
    EXPECT_TRUE(spinUntil([&] { return client.deviceGone(); }));
}

TEST(NetGap, HeartbeatAdvanceEmitsGapWithoutRecords)
{
    RawServer raw(net::kProtocolMinor);
    std::thread server([&] { raw.acceptAndHandshake(); });
    net::NetPowerSensor::Options options;
    options.autoReconnect = false;
    net::NetPowerSensor client(raw.endpoint(), options);
    server.join();

    raw.sendHeartbeat(0);
    raw.sendBatch(0, {testRecord(1.0, 0x01)});
    ASSERT_TRUE(
        spinUntil([&] { return client.recordsReceived() == 1; }));

    // DropOldest upstream ate records 1..3; the next heartbeat
    // announces seq 4 with nothing in between.
    raw.sendHeartbeat(4);
    ASSERT_TRUE(spinUntil([&] { return client.gapEvents() == 1; }));
    EXPECT_EQ(client.gapRecords(), 3u);
    EXPECT_EQ(client.recordsReceived(), 1u);

    raw.sendEndOfStream();
    EXPECT_TRUE(spinUntil([&] { return client.deviceGone(); }));
}

TEST(NetGap, BackwardSequenceMeansRestartWithUnknowableGap)
{
    RawServer raw(net::kProtocolMinor);
    std::thread server([&] { raw.acceptAndHandshake(); });
    net::NetPowerSensor::Options options;
    options.autoReconnect = false;
    net::NetPowerSensor client(raw.endpoint(), options);
    server.join();

    GapLog gaps;
    gaps.attach(client);

    raw.sendHeartbeat(5); // baseline mid-stream
    raw.sendBatch(5, {testRecord(1.0, 0x01)});
    ASSERT_TRUE(
        spinUntil([&] { return client.recordsReceived() == 1; }));

    // Sequence numbering started over: a restarted server. The gap
    // is flagged but its size is unknowable (records == 0).
    raw.sendBatch(2, {testRecord(2.0, 0x01)});
    ASSERT_TRUE(spinUntil([&] { return client.gapEvents() == 1; }));
    EXPECT_EQ(client.gapRecords(), 0u);
    {
        std::lock_guard<std::mutex> lock(gaps.mutex);
        ASSERT_EQ(gaps.events.size(), 1u);
        EXPECT_EQ(gaps.events[0].records, 0u);
    }
    ASSERT_TRUE(
        spinUntil([&] { return client.recordsReceived() == 2; }));

    raw.sendEndOfStream();
    EXPECT_TRUE(spinUntil([&] { return client.deviceGone(); }));
}

TEST(NetGap, V10ServerStreamsWithoutSequencesOrHeartbeats)
{
    RawServer raw(0); // a pre-v1.1 server
    std::thread server([&] { raw.acceptAndHandshake(); });
    net::NetPowerSensor::Options options;
    options.autoReconnect = false;
    options.idleTimeout = 0.2; // must stay disarmed against v1.0
    net::NetPowerSensor client(raw.endpoint(), options);
    server.join();

    raw.sendBatch(0, {testRecord(1.0, 0x01), testRecord(2.0, 0x01)});
    ASSERT_TRUE(
        spinUntil([&] { return client.recordsReceived() == 2; }));

    // Idle well past idleTimeout: against a v1.0 server (no
    // heartbeats) the silence must NOT be declared a dead peer.
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    EXPECT_FALSE(client.deviceGone());
    raw.sendBatch(0, {testRecord(3.0, 0x01)});
    ASSERT_TRUE(
        spinUntil([&] { return client.recordsReceived() == 3; }));
    EXPECT_EQ(client.gapEvents(), 0u);
    EXPECT_EQ(client.heartbeatsReceived(), 0u);

    raw.sendEndOfStream();
    EXPECT_TRUE(spinUntil([&] { return client.deviceGone(); }));
}

// ----- auto-reconnect ----------------------------------------------------

TEST(NetReconnect, ResetsAreSurvivedWithExactAccounting)
{
    net::Ps3Server::Options server_options;
    server_options.heartbeatInterval = 0.02;
    net::Ps3Server server(testConfig(), "fw-chaos", server_options);
    const auto endpoint =
        server.listen(Endpoint::parse("unix://" + socketPath()));

    // First connection dies by injected reset mid-stream; every
    // later one is clean.
    std::atomic<std::size_t> attempts{0};
    net::NetPowerSensor::Options options;
    options.reconnectInitialBackoff = 0.01;
    options.reconnectMaxBackoff = 0.05;
    options.socketFactory =
        [&](const Endpoint &target, double timeout)
        -> std::unique_ptr<transport::StreamSocket> {
        auto socket = transport::SocketDevice::connect(target, timeout);
        if (attempts.fetch_add(1) != 0)
            return socket;
        transport::Fault reset;
        reset.kind = transport::Fault::Kind::Reset;
        reset.afterBytes = 2000;
        return std::make_unique<transport::FaultySocket>(
            std::move(socket), std::vector<transport::Fault>{reset});
    };
    net::NetPowerSensor client(endpoint, options);

    // Lock the baseline before publishing (docs/PROTOCOL.md).
    ASSERT_TRUE(
        spinUntil([&] { return client.heartbeatsReceived() >= 1; }));

    constexpr std::uint64_t kTotal = 400;
    for (std::uint64_t i = 0; i < kTotal; ++i) {
        server.publish(testRecord(50e-6 * i, 0x01));
        if (i % 16 == 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
    }

    // Exact accounting: received + gap-covered == published.
    ASSERT_TRUE(spinUntil([&] {
        return client.recordsReceived() + client.gapRecords()
               == kTotal;
    }));
    EXPECT_EQ(client.reconnects(), 1u);
    EXPECT_GE(attempts.load(), 2u);

    server.stop();
    EXPECT_TRUE(spinUntil([&] { return client.deviceGone(); }));
    EXPECT_EQ(client.recordsReceived() + client.gapRecords(), kTotal);
}

TEST(NetReconnect, ExhaustedRetryBudgetFlipsDeviceGone)
{
    net::NetPowerSensor::Options options;
    options.maxReconnectAttempts = 2;
    options.reconnectInitialBackoff = 0.01;
    options.reconnectMaxBackoff = 0.02;

    auto raw = std::make_unique<RawServer>(net::kProtocolMinor);
    std::thread server([&] { raw->acceptAndHandshake(); });
    net::NetPowerSensor client(raw->endpoint(), options);
    server.join();

    ASSERT_FALSE(client.deviceGone());

    // Tear the server down abruptly: no end-of-stream, the socket
    // path is unlinked, every reconnect attempt fails. After the
    // retry budget the client must give up and flip deviceGone.
    raw.reset();
    EXPECT_TRUE(spinUntil([&] { return client.deviceGone(); }));
    EXPECT_EQ(client.reconnects(), 0u);
    EXPECT_FALSE(client.waitForSamples(1));
}

TEST(NetReconnect, GracefulEndOfStreamDoesNotReconnect)
{
    net::Ps3Server server(testConfig(), "fw-eos");
    const auto endpoint =
        server.listen(Endpoint::parse("unix://" + socketPath()));

    net::NetPowerSensor::Options options;
    options.reconnectInitialBackoff = 0.01;
    net::NetPowerSensor client(endpoint, options); // reconnect ON
    ASSERT_TRUE(
        spinUntil([&] { return server.subscriberCount() == 1; }));

    server.publish(testRecord(1.0, 0x01));
    server.stop(); // graceful: drain + final heartbeat + EOS
    EXPECT_TRUE(spinUntil([&] { return client.deviceGone(); }));
    EXPECT_EQ(client.reconnects(), 0u);
    EXPECT_EQ(client.recordsReceived(), 1u);
    EXPECT_EQ(client.gapRecords(), 0u);
}

// ----- v1.2 protocol: tier negotiation and aggregate streams -------------

/** A recognisable aggregate bucket for codec and stream tests. */
host::HistoryBucket
testBucket(double start, double period, std::uint64_t samples,
           double min_w, double max_w, double mean_w)
{
    host::HistoryBucket bucket;
    bucket.startTime = start;
    bucket.endTime = start + period;
    bucket.minPower = min_w;
    bucket.maxPower = max_w;
    bucket.sumPower = mean_w * static_cast<double>(samples);
    bucket.energyJoules = bucket.sumPower / firmware::kSampleRateHz;
    bucket.samples = samples;
    bucket.presentMask = 0x1;
    bucket.sumVoltage[0] = 12.0 * static_cast<double>(samples);
    bucket.sumCurrent[0] =
        (mean_w / 12.0) * static_cast<double>(samples);
    return bucket;
}

/** Collects raw records and aggregate buckets from one decoder. */
struct StreamCollector
{
    std::vector<host::DumpRecord> records;
    std::vector<std::pair<host::Tier, host::HistoryBucket>> buckets;

    static void
    onRecord(void *self, const host::DumpRecord &record)
    {
        static_cast<StreamCollector *>(self)->records.push_back(
            record);
    }

    static void
    onBucket(void *self, host::Tier tier,
             const host::HistoryBucket &bucket)
    {
        static_cast<StreamCollector *>(self)->buckets.emplace_back(
            tier, bucket);
    }
};

TEST(NetWire, ClientHelloCarriesTierInByteSeven)
{
    net::ClientHello hello;
    hello.tier = host::Tier::Hz10;
    const auto bytes = hello.encode();
    ASSERT_EQ(bytes.size(), net::kClientHelloSize);
    EXPECT_EQ(bytes[7], 2); // Tier::Hz10 wire value

    net::HelloStatus status = net::HelloStatus::Ok;
    const auto decoded =
        net::ClientHello::decode(bytes.data(), bytes.size(), status);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->tier, host::Tier::Hz10);

    // Tier values beyond the cascade reject with BadHello.
    auto bad = bytes;
    bad[7] = host::kMaxTierValue + 1;
    EXPECT_FALSE(
        net::ClientHello::decode(bad.data(), bad.size(), status)
            .has_value());
    EXPECT_EQ(status, net::HelloStatus::BadHello);
}

TEST(NetWire, BucketRecordRoundTrip)
{
    // A marker record rides raw between aggregates; both bucket
    // tiers and every summed field must survive the wire.
    std::vector<std::uint8_t> payload;
    net::encodeRecord(payload, testRecord(0.5, 0x01, true));
    auto fine = testBucket(1.0, 0.001, 20, 22.0, 250.0, 24.0);
    fine.presentMask = 0x3;
    fine.sumVoltage[1] = 13.0 * 20;
    fine.sumCurrent[1] = 0.5 * 20;
    net::encodeBucket(payload, host::Tier::Hz1000, fine);
    const auto coarse =
        testBucket(0.0, 1.0, 20000, 20.0, 240.0, 24.0);
    net::encodeBucket(payload, host::Tier::Hz1, coarse);

    net::RecordDecoder decoder;
    StreamCollector collector;
    decoder.feed(payload.data(), payload.size(), &collector,
                 StreamCollector::onRecord,
                 StreamCollector::onBucket);
    EXPECT_EQ(decoder.recordCount(), 1u);
    EXPECT_EQ(decoder.bucketCount(), 2u);
    ASSERT_EQ(collector.records.size(), 1u);
    EXPECT_TRUE(collector.records[0].marker);
    ASSERT_EQ(collector.buckets.size(), 2u);

    EXPECT_EQ(collector.buckets[0].first, host::Tier::Hz1000);
    const auto &decoded = collector.buckets[0].second;
    EXPECT_DOUBLE_EQ(decoded.startTime, fine.startTime);
    // endTime never travels: the decoder reconstructs it from the
    // tier period. energyJoules needs the handshake sample rate, so
    // the decoder leaves it for the subscriber to derive.
    EXPECT_DOUBLE_EQ(decoded.endTime, fine.startTime + 0.001);
    EXPECT_DOUBLE_EQ(decoded.energyJoules, 0.0);
    EXPECT_DOUBLE_EQ(decoded.minPower, 22.0);
    EXPECT_DOUBLE_EQ(decoded.maxPower, 250.0);
    EXPECT_DOUBLE_EQ(decoded.sumPower, fine.sumPower);
    EXPECT_EQ(decoded.samples, 20u);
    EXPECT_EQ(decoded.presentMask, 0x3);
    // Pair sums ride as f32 (these values are f32-exact).
    EXPECT_DOUBLE_EQ(decoded.sumVoltage[0], fine.sumVoltage[0]);
    EXPECT_DOUBLE_EQ(decoded.sumVoltage[1], fine.sumVoltage[1]);
    EXPECT_DOUBLE_EQ(decoded.sumCurrent[0], fine.sumCurrent[0]);
    EXPECT_DOUBLE_EQ(decoded.sumCurrent[1], fine.sumCurrent[1]);
    EXPECT_DOUBLE_EQ(decoded.meanPower(), 24.0);

    EXPECT_EQ(collector.buckets[1].first, host::Tier::Hz1);
    EXPECT_EQ(collector.buckets[1].second.samples, 20000u);
}

TEST(NetWire, DecoderRejectsMalformedBucketRecords)
{
    StreamCollector collector;
    const auto bucket =
        testBucket(0.0, 0.1, 2000, 20.0, 30.0, 24.0);

    // Truncated aggregate record.
    std::vector<std::uint8_t> truncated;
    net::encodeBucket(truncated, host::Tier::Hz10, bucket);
    truncated.resize(truncated.size() - 5);
    net::RecordDecoder decoder;
    EXPECT_THROW(decoder.feed(truncated.data(), truncated.size(),
                              &collector, StreamCollector::onRecord,
                              StreamCollector::onBucket),
                 DeviceError);

    // Raw (0) and beyond-cascade tier bytes are invalid in 'A'.
    for (const std::uint8_t bad :
         {std::uint8_t{0},
          std::uint8_t{host::kMaxTierValue + 1}}) {
        std::vector<std::uint8_t> payload;
        net::encodeBucket(payload, host::Tier::Hz10, bucket);
        payload[1] = bad;
        net::RecordDecoder tier_decoder;
        EXPECT_THROW(
            tier_decoder.feed(payload.data(), payload.size(),
                              &collector, StreamCollector::onRecord,
                              StreamCollector::onBucket),
            DeviceError);
    }

    // An aggregate record on a raw stream (no bucket callback
    // registered) is a protocol violation, not a silent drop.
    std::vector<std::uint8_t> payload;
    net::encodeBucket(payload, host::Tier::Hz1000, bucket);
    net::RecordDecoder raw_decoder;
    EXPECT_THROW(raw_decoder.feed(payload.data(), payload.size(),
                                  &collector,
                                  StreamCollector::onRecord,
                                  nullptr),
                 DeviceError);
}

TEST(NetTier, HandshakeGrantsTierAndBucketsAdvanceTheSeqSpace)
{
    RawServer raw(net::kProtocolMinor);
    std::thread server([&] { raw.acceptAndHandshake(); });
    net::NetPowerSensor::Options options;
    options.autoReconnect = false;
    options.tier = host::Tier::Hz1000;
    net::NetPowerSensor client(raw.endpoint(), options);
    server.join();
    EXPECT_EQ(raw.grantedTier(), host::Tier::Hz1000);
    EXPECT_EQ(client.tier(), host::Tier::Hz1000);

    raw.sendHeartbeat(0);
    raw.sendBucketBatch(
        0, host::Tier::Hz1000,
        {testBucket(0.0, 0.001, 20, 22.0, 250.0, 24.0),
         testBucket(0.001, 0.001, 20, 22.0, 30.0, 24.0)});
    ASSERT_TRUE(
        spinUntil([&] { return client.bucketsReceived() == 2; }));
    EXPECT_EQ(client.recordsReceived(), 0u);
    EXPECT_EQ(client.gapEvents(), 0u);

    // 'A' records advance the sequence space by their sample count:
    // after 2 x 20 samples a heartbeat at 40 is gap-free, while one
    // at 45 reveals a hole of exactly 5 records.
    raw.sendHeartbeat(40);
    raw.sendHeartbeat(45);
    ASSERT_TRUE(spinUntil([&] { return client.gapEvents() == 1; }));
    EXPECT_EQ(client.gapRecords(), 5u);

    // The client's history carries the transient from bucket one.
    const double inf = std::numeric_limits<double>::infinity();
    const auto stats =
        client.history()->window(host::Tier::Hz1000, -inf, inf);
    EXPECT_EQ(stats.samples, 40u);
    EXPECT_DOUBLE_EQ(stats.maxPower, 250.0);
    EXPECT_DOUBLE_EQ(stats.minPower, 22.0);

    raw.sendEndOfStream();
    EXPECT_TRUE(spinUntil([&] { return client.deviceGone(); }));
}

TEST(NetTier, PreV12ServersStreamRawAndRejectRenegotiation)
{
    // Against v1.0 and v1.1 servers a tier request is invisible
    // (byte 7 is reserved there): the stream stays raw and a
    // mid-stream renegotiation is a usage error.
    for (const std::uint8_t minor :
         {std::uint8_t{0}, std::uint8_t{1}}) {
        RawServer raw(minor);
        std::thread server([&] { raw.acceptAndHandshake(); });
        net::NetPowerSensor::Options options;
        options.autoReconnect = false;
        options.tier = host::Tier::Hz1000;
        net::NetPowerSensor client(raw.endpoint(), options);
        server.join();
        EXPECT_EQ(client.tier(), host::Tier::Raw);

        raw.sendBatch(
            0, {testRecord(1.0, 0x01), testRecord(2.0, 0x01)});
        ASSERT_TRUE(spinUntil(
            [&] { return client.recordsReceived() == 2; }));
        EXPECT_EQ(client.bucketsReceived(), 0u);
        EXPECT_THROW(client.requestTier(host::Tier::Hz10),
                     UsageError);

        raw.sendEndOfStream();
        EXPECT_TRUE(spinUntil([&] { return client.deviceGone(); }));
    }
}

TEST(NetTier, LiveTieredStreamPreservesTransients)
{
    net::Ps3Server server(testConfig(), "fw-tier");
    const auto endpoint =
        server.listen(Endpoint::parse("unix://" + socketPath()));

    net::NetPowerSensor::Options options;
    options.autoReconnect = false;
    options.tier = host::Tier::Hz1000;
    net::NetPowerSensor client(endpoint, options);
    EXPECT_EQ(client.tier(), host::Tier::Hz1000);
    ASSERT_TRUE(
        spinUntil([&] { return server.subscriberCount() == 1; }));

    // 2 A baseline on a 12 V rail (24 W), one 50 µs 20 A transient
    // (240 W) and one marker mid-stream.
    for (int i = 0; i < 2000; ++i) {
        host::DumpRecord record{};
        record.time = 50e-6 * static_cast<double>(i);
        record.presentMask = 0x1;
        record.voltage[0] = 12.0;
        record.current[0] = i == 777 ? 20.0 : 2.0;
        if (i == 1500) {
            record.marker = true;
            record.markerChar = 'Q';
        }
        server.publish(record);
    }
    server.stop(); // drain, flush the open bucket, EOS

    EXPECT_TRUE(spinUntil([&] { return client.deviceGone(); }));
    EXPECT_EQ(client.gapEvents(), 0u);
    // The marker rides raw between buckets; everything else folds.
    EXPECT_EQ(client.recordsReceived(), 1u);
    EXPECT_GE(client.bucketsReceived(), 100u);

    // Transient preservation (the acceptance property): the 1 kHz
    // subscriber still sees the one-sample 240 W spike in its
    // bucket's max, and no sample was lost to aggregation.
    const double inf = std::numeric_limits<double>::infinity();
    const auto stats =
        client.history()->window(host::Tier::Hz1000, -inf, inf);
    // 1999 samples arrive folded in buckets; the marker record
    // rides raw and folds into the client's history on arrival, so
    // every published sample is accounted for.
    EXPECT_EQ(stats.samples, 2000u);
    EXPECT_DOUBLE_EQ(stats.maxPower, 240.0);
    EXPECT_DOUBLE_EQ(stats.minPower, 24.0);
    EXPECT_NEAR(stats.meanPower, 24.1, 0.2);
}

TEST(NetTier, MidStreamRenegotiationSwitchesBothWays)
{
    net::Ps3Server server(testConfig(), "fw-reneg");
    const auto endpoint =
        server.listen(Endpoint::parse("unix://" + socketPath()));

    net::NetPowerSensor::Options options;
    options.autoReconnect = false;
    net::NetPowerSensor client(endpoint, options); // raw stream
    EXPECT_EQ(client.tier(), host::Tier::Raw);
    ASSERT_TRUE(
        spinUntil([&] { return server.subscriberCount() == 1; }));

    int published = 0;
    auto publishSome = [&](int count) {
        for (int i = 0; i < count; ++i, ++published) {
            host::DumpRecord record{};
            record.time = 50e-6 * static_cast<double>(published);
            record.presentMask = 0x1;
            record.voltage[0] = 12.0;
            record.current[0] = 2.0;
            server.publish(record);
        }
    };

    publishSome(50);
    ASSERT_TRUE(
        spinUntil([&] { return client.recordsReceived() == 50; }));
    EXPECT_EQ(client.bucketsReceived(), 0u);

    // Switch to 1 kHz aggregation; keep feeding until the first
    // bucket lands (the request is polled on the sender thread).
    client.requestTier(host::Tier::Hz1000);
    ASSERT_TRUE(spinUntil([&] {
        publishSome(20);
        return client.bucketsReceived() > 0;
    }));

    // And back to raw: new records arrive as records again.
    const auto raw_before = client.recordsReceived();
    client.requestTier(host::Tier::Raw);
    ASSERT_TRUE(spinUntil([&] {
        publishSome(20);
        return client.recordsReceived() > raw_before + 40;
    }));

    server.stop();
    EXPECT_TRUE(spinUntil([&] { return client.deviceGone(); }));
    // Renegotiation must not fake a hole: every record was either
    // delivered raw or folded into a delivered bucket.
    EXPECT_EQ(client.gapEvents(), 0u);
}

} // namespace
} // namespace ps3
