/**
 * @file
 * Unit tests for the transport layer: byte queue, emulated serial
 * port (including the throttle), fault injection, and the POSIX
 * port's error paths.
 */

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "transport/byte_queue.hpp"
#include "transport/emulated_serial_port.hpp"
#include "transport/fault_injection.hpp"
#include "transport/posix_serial_port.hpp"

namespace ps3::transport {
namespace {

TEST(ByteQueue, PushPopRoundTrip)
{
    ByteQueue queue;
    const std::uint8_t data[] = {1, 2, 3, 4, 5};
    queue.push(data, sizeof(data));
    EXPECT_EQ(queue.size(), 5u);

    std::uint8_t out[3];
    EXPECT_EQ(queue.pop(out, sizeof(out), 0.1), 3u);
    EXPECT_EQ(out[0], 1);
    EXPECT_EQ(out[2], 3);
    EXPECT_EQ(queue.pop(out, sizeof(out), 0.1), 2u);
    EXPECT_EQ(out[0], 4);
}

TEST(ByteQueue, PopTimesOutWhenEmpty)
{
    ByteQueue queue;
    std::uint8_t out[4];
    const auto start = std::chrono::steady_clock::now();
    EXPECT_EQ(queue.pop(out, sizeof(out), 0.05), 0u);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_GE(elapsed, std::chrono::milliseconds(40));
}

TEST(ByteQueue, BlockingPopWakesOnPush)
{
    ByteQueue queue;
    std::uint8_t out[1];
    std::thread producer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        const std::uint8_t byte = 0xAB;
        queue.push(&byte, 1);
    });
    EXPECT_EQ(queue.pop(out, 1, 2.0), 1u);
    EXPECT_EQ(out[0], 0xAB);
    producer.join();
}

TEST(ByteQueue, ShutdownWakesAndDrains)
{
    ByteQueue queue;
    std::thread closer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        queue.shutdown();
    });
    std::uint8_t out[1];
    EXPECT_EQ(queue.pop(out, 1, 5.0), 0u);
    EXPECT_TRUE(queue.isShutdown());
    closer.join();
}

/** A trivial pump producing a repeating byte pattern. */
class PatternPump : public BytePump
{
  public:
    std::size_t
    produce(std::uint8_t *buffer, std::size_t max_bytes) override
    {
        if (exhausted)
            return 0;
        for (std::size_t i = 0; i < max_bytes; ++i)
            buffer[i] = static_cast<std::uint8_t>(counter++);
        return max_bytes;
    }

    void
    hostWrite(const std::uint8_t *data, std::size_t size) override
    {
        received.insert(received.end(), data, data + size);
    }

    unsigned counter = 0;
    bool exhausted = false;
    std::vector<std::uint8_t> received;
};

TEST(EmulatedSerialPort, PullsFromPumpAndForwardsWrites)
{
    PatternPump pump;
    EmulatedSerialPort port(pump);

    std::uint8_t buffer[16];
    EXPECT_EQ(port.read(buffer, sizeof(buffer), 0.1), 16u);
    EXPECT_EQ(buffer[0], 0);
    EXPECT_EQ(buffer[15], 15);

    const std::uint8_t cmd[] = {'S', 'M', 'x'};
    port.write(cmd, sizeof(cmd));
    ASSERT_EQ(pump.received.size(), 3u);
    EXPECT_EQ(pump.received[1], 'M');
}

TEST(EmulatedSerialPort, EmptyPumpBehavesLikeTimeout)
{
    PatternPump pump;
    pump.exhausted = true;
    EmulatedSerialPort port(pump);
    std::uint8_t buffer[8];
    EXPECT_EQ(port.read(buffer, sizeof(buffer), 0.01), 0u);
    EXPECT_FALSE(port.closed());
}

TEST(EmulatedSerialPort, DisconnectStopsTraffic)
{
    PatternPump pump;
    EmulatedSerialPort port(pump);
    port.disconnect();
    std::uint8_t buffer[8];
    EXPECT_EQ(port.read(buffer, sizeof(buffer), 0.01), 0u);
    EXPECT_TRUE(port.closed());
    const std::uint8_t byte = 'S';
    port.write(&byte, 1); // silently dropped
    EXPECT_TRUE(pump.received.empty());
}

TEST(EmulatedSerialPort, ThrottleLimitsByteRate)
{
    PatternPump pump;
    EmulatedSerialPort port(pump);
    port.setThrottle(100e3); // 100 kB/s

    std::uint8_t buffer[4096];
    const auto start = std::chrono::steady_clock::now();
    std::size_t total = 0;
    while (total < 10000)
        total += port.read(buffer, sizeof(buffer), 0.1);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    // 10 kB at 100 kB/s must take about 0.1 s.
    EXPECT_GT(elapsed.count(), 0.06);
    EXPECT_LT(elapsed.count(), 0.4);
}

TEST(FaultInjection, NoFaultsMeansTransparent)
{
    PatternPump pump;
    EmulatedSerialPort port(pump);
    FaultInjectingDevice faulty(port, FaultProfile{}, 1);

    std::uint8_t buffer[64];
    EXPECT_EQ(faulty.read(buffer, sizeof(buffer), 0.1), 64u);
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_EQ(buffer[i], i);
    EXPECT_EQ(faulty.faultCount(), 0u);
}

TEST(FaultInjection, DropsReduceByteCount)
{
    PatternPump pump;
    EmulatedSerialPort port(pump);
    FaultProfile profile;
    profile.dropProbability = 0.5;
    FaultInjectingDevice faulty(port, profile, 7);

    std::uint8_t buffer[1000];
    const std::size_t got = faulty.read(buffer, sizeof(buffer), 0.1);
    EXPECT_LT(got, 700u);
    EXPECT_GT(got, 300u);
    EXPECT_GT(faulty.faultCount(), 0u);
}

TEST(FaultInjection, CorruptionChangesBytes)
{
    PatternPump pump;
    EmulatedSerialPort port(pump);
    FaultProfile profile;
    profile.corruptProbability = 0.2;
    FaultInjectingDevice faulty(port, profile, 9);

    std::uint8_t buffer[1000];
    const std::size_t got = faulty.read(buffer, sizeof(buffer), 0.1);
    ASSERT_EQ(got, 1000u);
    unsigned mismatches = 0;
    for (unsigned i = 0; i < got; ++i) {
        if (buffer[i] != static_cast<std::uint8_t>(i))
            ++mismatches;
    }
    EXPECT_GT(mismatches, 100u);
    EXPECT_LT(mismatches, 320u);
    EXPECT_EQ(faulty.faultCount(), mismatches);
}

TEST(FaultInjection, DeterministicPerSeed)
{
    PatternPump pump_a, pump_b;
    EmulatedSerialPort port_a(pump_a), port_b(pump_b);
    FaultProfile profile;
    profile.corruptProbability = 0.1;
    profile.dropProbability = 0.05;
    FaultInjectingDevice faulty_a(port_a, profile, 33);
    FaultInjectingDevice faulty_b(port_b, profile, 33);

    std::uint8_t buf_a[512], buf_b[512];
    const auto got_a = faulty_a.read(buf_a, sizeof(buf_a), 0.1);
    const auto got_b = faulty_b.read(buf_b, sizeof(buf_b), 0.1);
    ASSERT_EQ(got_a, got_b);
    for (std::size_t i = 0; i < got_a; ++i)
        ASSERT_EQ(buf_a[i], buf_b[i]);
}

TEST(PosixSerialPort, ThrowsOnMissingDevice)
{
    EXPECT_THROW(PosixSerialPort("/nonexistent/device"),
                 DeviceError);
}

} // namespace
} // namespace ps3::transport
