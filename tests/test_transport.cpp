/**
 * @file
 * Unit tests for the transport layer: byte queue, emulated serial
 * port (including the throttle), fault injection, and the POSIX
 * port's error paths.
 */

#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include <sys/socket.h>

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "transport/byte_queue.hpp"
#include "transport/emulated_serial_port.hpp"
#include "transport/fault_injection.hpp"
#include "transport/faulty_socket.hpp"
#include "transport/posix_serial_port.hpp"
#include "transport/socket_device.hpp"

namespace ps3::transport {
namespace {

TEST(ByteQueue, PushPopRoundTrip)
{
    ByteQueue queue;
    const std::uint8_t data[] = {1, 2, 3, 4, 5};
    queue.push(data, sizeof(data));
    EXPECT_EQ(queue.size(), 5u);

    std::uint8_t out[3];
    EXPECT_EQ(queue.pop(out, sizeof(out), 0.1), 3u);
    EXPECT_EQ(out[0], 1);
    EXPECT_EQ(out[2], 3);
    EXPECT_EQ(queue.pop(out, sizeof(out), 0.1), 2u);
    EXPECT_EQ(out[0], 4);
}

TEST(ByteQueue, PopTimesOutWhenEmpty)
{
    ByteQueue queue;
    std::uint8_t out[4];
    const auto start = std::chrono::steady_clock::now();
    EXPECT_EQ(queue.pop(out, sizeof(out), 0.05), 0u);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_GE(elapsed, std::chrono::milliseconds(40));
}

TEST(ByteQueue, BlockingPopWakesOnPush)
{
    ByteQueue queue;
    std::uint8_t out[1];
    std::thread producer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        const std::uint8_t byte = 0xAB;
        queue.push(&byte, 1);
    });
    EXPECT_EQ(queue.pop(out, 1, 2.0), 1u);
    EXPECT_EQ(out[0], 0xAB);
    producer.join();
}

TEST(ByteQueue, ShutdownWakesAndDrains)
{
    ByteQueue queue;
    std::thread closer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        queue.shutdown();
    });
    std::uint8_t out[1];
    EXPECT_EQ(queue.pop(out, 1, 5.0), 0u);
    EXPECT_TRUE(queue.isShutdown());
    closer.join();
}

/** A trivial pump producing a repeating byte pattern. */
class PatternPump : public BytePump
{
  public:
    std::size_t
    produce(std::uint8_t *buffer, std::size_t max_bytes) override
    {
        if (exhausted)
            return 0;
        for (std::size_t i = 0; i < max_bytes; ++i)
            buffer[i] = static_cast<std::uint8_t>(counter++);
        return max_bytes;
    }

    void
    hostWrite(const std::uint8_t *data, std::size_t size) override
    {
        received.insert(received.end(), data, data + size);
    }

    unsigned counter = 0;
    bool exhausted = false;
    std::vector<std::uint8_t> received;
};

TEST(EmulatedSerialPort, PullsFromPumpAndForwardsWrites)
{
    PatternPump pump;
    EmulatedSerialPort port(pump);

    std::uint8_t buffer[16];
    EXPECT_EQ(port.read(buffer, sizeof(buffer), 0.1), 16u);
    EXPECT_EQ(buffer[0], 0);
    EXPECT_EQ(buffer[15], 15);

    const std::uint8_t cmd[] = {'S', 'M', 'x'};
    port.write(cmd, sizeof(cmd));
    ASSERT_EQ(pump.received.size(), 3u);
    EXPECT_EQ(pump.received[1], 'M');
}

TEST(EmulatedSerialPort, EmptyPumpBehavesLikeTimeout)
{
    PatternPump pump;
    pump.exhausted = true;
    EmulatedSerialPort port(pump);
    std::uint8_t buffer[8];
    EXPECT_EQ(port.read(buffer, sizeof(buffer), 0.01), 0u);
    EXPECT_FALSE(port.closed());
}

TEST(EmulatedSerialPort, DisconnectStopsTraffic)
{
    PatternPump pump;
    EmulatedSerialPort port(pump);
    port.disconnect();
    std::uint8_t buffer[8];
    EXPECT_EQ(port.read(buffer, sizeof(buffer), 0.01), 0u);
    EXPECT_TRUE(port.closed());
    const std::uint8_t byte = 'S';
    port.write(&byte, 1); // silently dropped
    EXPECT_TRUE(pump.received.empty());
}

TEST(EmulatedSerialPort, ThrottleLimitsByteRate)
{
    PatternPump pump;
    EmulatedSerialPort port(pump);
    port.setThrottle(100e3); // 100 kB/s

    std::uint8_t buffer[4096];
    const auto start = std::chrono::steady_clock::now();
    std::size_t total = 0;
    while (total < 10000)
        total += port.read(buffer, sizeof(buffer), 0.1);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    // 10 kB at 100 kB/s must take about 0.1 s.
    EXPECT_GT(elapsed.count(), 0.06);
    EXPECT_LT(elapsed.count(), 0.4);
}

TEST(FaultInjection, NoFaultsMeansTransparent)
{
    PatternPump pump;
    EmulatedSerialPort port(pump);
    FaultInjectingDevice faulty(port, FaultProfile{}, 1);

    std::uint8_t buffer[64];
    EXPECT_EQ(faulty.read(buffer, sizeof(buffer), 0.1), 64u);
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_EQ(buffer[i], i);
    EXPECT_EQ(faulty.faultCount(), 0u);
}

TEST(FaultInjection, DropsReduceByteCount)
{
    PatternPump pump;
    EmulatedSerialPort port(pump);
    FaultProfile profile;
    profile.dropProbability = 0.5;
    FaultInjectingDevice faulty(port, profile, 7);

    std::uint8_t buffer[1000];
    const std::size_t got = faulty.read(buffer, sizeof(buffer), 0.1);
    EXPECT_LT(got, 700u);
    EXPECT_GT(got, 300u);
    EXPECT_GT(faulty.faultCount(), 0u);
}

TEST(FaultInjection, CorruptionChangesBytes)
{
    PatternPump pump;
    EmulatedSerialPort port(pump);
    FaultProfile profile;
    profile.corruptProbability = 0.2;
    FaultInjectingDevice faulty(port, profile, 9);

    std::uint8_t buffer[1000];
    const std::size_t got = faulty.read(buffer, sizeof(buffer), 0.1);
    ASSERT_EQ(got, 1000u);
    unsigned mismatches = 0;
    for (unsigned i = 0; i < got; ++i) {
        if (buffer[i] != static_cast<std::uint8_t>(i))
            ++mismatches;
    }
    EXPECT_GT(mismatches, 100u);
    EXPECT_LT(mismatches, 320u);
    EXPECT_EQ(faulty.faultCount(), mismatches);
}

TEST(FaultInjection, DeterministicPerSeed)
{
    PatternPump pump_a, pump_b;
    EmulatedSerialPort port_a(pump_a), port_b(pump_b);
    FaultProfile profile;
    profile.corruptProbability = 0.1;
    profile.dropProbability = 0.05;
    FaultInjectingDevice faulty_a(port_a, profile, 33);
    FaultInjectingDevice faulty_b(port_b, profile, 33);

    std::uint8_t buf_a[512], buf_b[512];
    const auto got_a = faulty_a.read(buf_a, sizeof(buf_a), 0.1);
    const auto got_b = faulty_b.read(buf_b, sizeof(buf_b), 0.1);
    ASSERT_EQ(got_a, got_b);
    for (std::size_t i = 0; i < got_a; ++i)
        ASSERT_EQ(buf_a[i], buf_b[i]);
}

TEST(PosixSerialPort, ThrowsOnMissingDevice)
{
    EXPECT_THROW(PosixSerialPort("/nonexistent/device"),
                 DeviceError);
}

TEST(FaultInjection, BurstDropTakesOutContiguousRuns)
{
    PatternPump pump;
    EmulatedSerialPort port(pump);
    FaultProfile profile;
    profile.burstDropProbability = 0.01;
    profile.burstDropLength = 64;
    FaultInjectingDevice faulty(port, profile, 11);

    // With ~1% burst starts over 4 kB source bytes, several whole
    // bursts fire; each swallows a contiguous 64-byte run, so the
    // single read comes up short and the delivered pattern jumps
    // forward by the burst length.
    std::uint8_t buffer[4096];
    const std::size_t got =
        faulty.read(buffer, sizeof(buffer), 0.1);
    ASSERT_GT(got, 0u);
    EXPECT_LT(got, 4096u); // something was dropped
    unsigned jumps = 0;
    for (std::size_t i = 1; i < got; ++i) {
        const std::uint8_t expected =
            static_cast<std::uint8_t>(buffer[i - 1] + 1);
        if (buffer[i] != expected)
            ++jumps;
    }
    EXPECT_GT(jumps, 0u);
    EXPECT_GT(faulty.faultCount(), 0u);
}

TEST(FaultInjection, ReadStallDelaysWithoutLoss)
{
    PatternPump pump;
    EmulatedSerialPort port(pump);
    FaultProfile profile;
    profile.readStallProbability = 1.0; // every read stalls
    profile.readStallSeconds = 0.02;
    FaultInjectingDevice faulty(port, profile, 5);

    std::uint8_t buffer[256];
    const auto start = std::chrono::steady_clock::now();
    const std::size_t got =
        faulty.read(buffer, sizeof(buffer), 0.5);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    // Late, not lost: the full pattern arrives intact after the
    // stall.
    EXPECT_GE(elapsed.count(), 0.015);
    ASSERT_EQ(got, sizeof(buffer));
    for (unsigned i = 0; i < got; ++i)
        EXPECT_EQ(buffer[i], static_cast<std::uint8_t>(i));
}

// ----- FaultySocket -------------------------------------------------------

/** A connected AF_UNIX pair: .first is decorated in the tests. */
std::pair<std::unique_ptr<SocketDevice>,
          std::unique_ptr<SocketDevice>>
socketPair()
{
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
        throw DeviceError("socketpair failed");
    return {std::make_unique<SocketDevice>(fds[0]),
            std::make_unique<SocketDevice>(fds[1])};
}

/** Read until n bytes or the deadline; returns bytes read. */
std::size_t
readAll(StreamSocket &socket, std::uint8_t *out, std::size_t n,
        double timeout_seconds = 1.0)
{
    std::size_t got = 0;
    const auto deadline =
        std::chrono::steady_clock::now()
        + std::chrono::duration<double>(timeout_seconds);
    while (got < n && std::chrono::steady_clock::now() < deadline) {
        got += socket.read(out + got, n - got, 0.05);
        if (socket.closed())
            break;
    }
    return got;
}

TEST(FaultySocket, EmptyScriptIsTransparent)
{
    auto [near, far] = socketPair();
    FaultySocket faulty(std::move(near), {});

    const std::uint8_t ping[] = {1, 2, 3, 4};
    faulty.write(ping, sizeof(ping));
    std::uint8_t buffer[4];
    ASSERT_EQ(readAll(*far, buffer, 4), 4u);
    EXPECT_EQ(buffer[3], 4);

    const std::uint8_t pong[] = {9, 8};
    far->write(pong, sizeof(pong));
    ASSERT_EQ(readAll(faulty, buffer, 2), 2u);
    EXPECT_EQ(buffer[0], 9);
    EXPECT_EQ(faulty.faultsFired(), 0u);
    EXPECT_FALSE(faulty.closed());
}

TEST(FaultySocket, ResetArmsOnByteThreshold)
{
    auto [near, far] = socketPair();
    Fault reset;
    reset.kind = Fault::Kind::Reset;
    reset.afterBytes = 4;
    FaultySocket faulty(std::move(near), {reset});

    // Below the threshold the connection works.
    std::uint8_t buffer[8];
    const std::uint8_t data[] = {1, 2, 3, 4};
    far->write(data, sizeof(data));
    ASSERT_EQ(readAll(faulty, buffer, 4), 4u);
    EXPECT_EQ(faulty.faultsFired(), 0u);

    // The next read finds the fault armed and resets.
    far->write(data, sizeof(data));
    EXPECT_EQ(readAll(faulty, buffer, 4), 0u);
    EXPECT_EQ(faulty.faultsFired(), 1u);
    EXPECT_TRUE(faulty.closed());
}

TEST(FaultySocket, TruncateReadSwallowsThenResets)
{
    auto [near, far] = socketPair();
    Fault truncate;
    truncate.kind = Fault::Kind::TruncateRead;
    truncate.afterBytes = 4;
    truncate.truncateBytes = 8;
    FaultySocket faulty(std::move(near), {truncate});

    std::uint8_t buffer[16];
    const std::uint8_t head[] = {1, 2, 3, 4};
    far->write(head, sizeof(head));
    ASSERT_EQ(readAll(faulty, buffer, 4), 4u);

    // The swallowed bytes are never delivered — the stream just
    // ends, like a peer whose final batch was cut off.
    const std::uint8_t tail[] = {5, 6, 7, 8, 9, 10, 11, 12};
    far->write(tail, sizeof(tail));
    EXPECT_EQ(readAll(faulty, buffer, 8), 0u);
    EXPECT_TRUE(faulty.closed());
    EXPECT_EQ(faulty.faultsFired(), 1u);
}

TEST(FaultySocket, PartialWriteDeliversHalfThenThrows)
{
    auto [near, far] = socketPair();
    Fault partial;
    partial.kind = Fault::Kind::PartialWrite;
    FaultySocket faulty(std::move(near), {partial});

    const std::uint8_t data[] = {1, 2, 3, 4, 5, 6, 7, 8};
    EXPECT_THROW(faulty.write(data, sizeof(data)), DeviceError);
    std::uint8_t buffer[8];
    EXPECT_EQ(readAll(*far, buffer, 8, 0.3), 4u);
    EXPECT_EQ(buffer[3], 4);
    EXPECT_TRUE(faulty.closed());
}

TEST(FaultySocket, ReadStallDelaysDeliveryWithoutLoss)
{
    auto [near, far] = socketPair();
    Fault stall;
    stall.kind = Fault::Kind::ReadStall;
    stall.stallSeconds = 0.08;
    FaultySocket faulty(std::move(near), {stall});

    const std::uint8_t data[] = {42, 43};
    far->write(data, sizeof(data));
    const auto start = std::chrono::steady_clock::now();
    std::uint8_t buffer[2];
    ASSERT_EQ(readAll(faulty, buffer, 2), 2u);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    // Late, not lost: the stall delays but both bytes arrive.
    EXPECT_GE(elapsed.count(), 0.06);
    EXPECT_EQ(buffer[0], 42);
    EXPECT_EQ(buffer[1], 43);
    EXPECT_FALSE(faulty.closed());
    EXPECT_EQ(faulty.faultsFired(), 1u);
}

} // namespace
} // namespace ps3::transport
