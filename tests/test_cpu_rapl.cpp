/**
 * @file
 * Tests for the CPU package model and the RAPL interface simulator:
 * phase power arithmetic, MSR update/quantisation semantics, and the
 * 32-bit counter wrap handling.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "dut/cpu_model.hpp"
#include "pmt/rapl_sim.hpp"

namespace ps3 {
namespace {

using dut::CpuDutModel;
using dut::CpuPhase;
using dut::CpuSpec;
using pmt::RaplConfig;
using pmt::RaplSimMeter;

TEST(CpuModel, IdleWithoutProgram)
{
    CpuDutModel cpu(CpuSpec::server16Core());
    EXPECT_DOUBLE_EQ(cpu.packagePower(0.0), 18.0);
    EXPECT_DOUBLE_EQ(cpu.packagePower(100.0), 18.0);
}

TEST(CpuModel, FullLoadPower)
{
    const auto spec = CpuSpec::server16Core();
    CpuDutModel cpu(spec);
    cpu.setProgram({{0.0, 10.0, spec.cores, 1.0}});
    // Well past the thermal tail: idle + all cores + full uncore.
    const double expected = spec.idlePower
                            + spec.cores * spec.perCorePower
                            + spec.uncorePower;
    EXPECT_NEAR(cpu.packagePower(5.0), expected, 0.01);
}

TEST(CpuModel, PartialLoadScalesWithCoresAndIntensity)
{
    const auto spec = CpuSpec::server16Core();
    CpuDutModel cpu(spec);
    cpu.setProgram({{0.0, 10.0, 8, 0.5}});
    const double expected =
        spec.idlePower + 8 * spec.perCorePower * 0.5
        + spec.uncorePower * 0.5 * 0.5;
    EXPECT_NEAR(cpu.packagePower(5.0), expected, 0.01);
}

TEST(CpuModel, ThermalTailSmoothsTransitions)
{
    const auto spec = CpuSpec::server16Core();
    CpuDutModel cpu(spec);
    cpu.setProgram({{1.0, 1.0, spec.cores, 1.0}});
    // Right at the phase start the tail keeps power near idle.
    EXPECT_LT(cpu.packagePower(1.0 + 1e-4), spec.idlePower + 10.0);
    // After the phase, power decays back.
    EXPECT_GT(cpu.packagePower(2.0 + 1e-4), spec.idlePower + 10.0);
    EXPECT_NEAR(cpu.packagePower(3.0), spec.idlePower, 0.1);
}

TEST(CpuModel, Validation)
{
    const auto spec = CpuSpec::server16Core();
    CpuDutModel cpu(spec);
    EXPECT_THROW(cpu.setProgram({{0.0, -1.0, 1, 1.0}}), UsageError);
    EXPECT_THROW(cpu.setProgram({{0.0, 1.0, 99, 1.0}}), UsageError);
    EXPECT_THROW(cpu.setProgram({{0.0, 1.0, 1, 2.0}}), UsageError);
    EXPECT_THROW(cpu.setProgram({{0.0, 1.0, 1, 1.0},
                                 {0.5, 1.0, 1, 1.0}}),
                 UsageError);
    EXPECT_THROW(cpu.current(1, 0.0, 12.0), UsageError);
    CpuSpec bad = spec;
    bad.cores = 0;
    EXPECT_THROW(CpuDutModel model(bad), UsageError);
}

TEST(RaplSim, RejectsBadConfig)
{
    CpuDutModel cpu(CpuSpec::server16Core());
    VirtualClock clock;
    RaplConfig bad;
    bad.updatePeriod = 0.0;
    EXPECT_THROW(RaplSimMeter meter(cpu, clock, bad), UsageError);
    bad = RaplConfig{};
    bad.counterBits = 0;
    EXPECT_THROW(RaplSimMeter meter(cpu, clock, bad), UsageError);
}

TEST(RaplSim, EnergyTracksConstantLoad)
{
    const auto spec = CpuSpec::server16Core();
    CpuDutModel cpu(spec);
    cpu.setProgram({{0.0, 100.0, spec.cores, 1.0}});
    VirtualClock clock;
    RaplSimMeter meter(cpu, clock);

    clock.advance(1.0); // settle past the thermal tail
    const auto before = meter.read();
    clock.advance(2.0);
    const auto after = meter.read();

    const double full = spec.idlePower
                        + spec.cores * spec.perCorePower
                        + spec.uncorePower;
    EXPECT_NEAR(pmt::watts(before, after), full, 0.5);
    EXPECT_NEAR(after.watts, full, 0.5);
}

TEST(RaplSim, CounterIsQuantisedToEnergyUnits)
{
    CpuDutModel cpu(CpuSpec::server16Core());
    VirtualClock clock;
    RaplConfig config;
    RaplSimMeter meter(cpu, clock, config);

    meter.read();
    clock.advance(0.1);
    const std::uint32_t counter = meter.rawCounter();
    // 18 W idle for 0.1 s = 1.8 J = ~29491 units; allow a grid
    // boundary's worth of slack (one 1 ms update = ~295 units).
    EXPECT_NEAR(static_cast<double>(counter),
                1.8 / config.energyUnitJoules, 450.0);
}

TEST(RaplSim, CounterOnlyMovesOnTheUpdateGrid)
{
    CpuDutModel cpu(CpuSpec::server16Core());
    VirtualClock clock;
    RaplConfig config;
    RaplSimMeter meter(cpu, clock, config);
    meter.read();
    clock.advance(1.0);
    // Re-reading without time advance never moves the counter.
    const std::uint32_t at_grid = meter.rawCounter();
    EXPECT_EQ(meter.rawCounter(), at_grid);
    // Ten update periods advance the counter by ten 1 ms quanta of
    // idle power (18 W): 10 x 18 mJ / 61 uJ = ~2949 units.
    clock.advance(10.0 * config.updatePeriod);
    const double delta = meter.rawCounter() - at_grid;
    EXPECT_NEAR(delta, 10.0 * 18.0 * config.updatePeriod
                           / config.energyUnitJoules,
                300.0);
}

TEST(RaplSim, UnwrapsCounterWraps)
{
    // Shrink the counter so it wraps quickly: 16 bits of 61 uJ is
    // ~4 J per wrap; the 106 W full-load CPU wraps every ~38 ms.
    const auto spec = CpuSpec::server16Core();
    CpuDutModel cpu(spec);
    cpu.setProgram({{0.0, 100.0, spec.cores, 1.0}});
    VirtualClock clock;
    RaplConfig config;
    config.counterBits = 16;
    RaplSimMeter meter(cpu, clock, config);

    clock.advance(1.0);
    const auto before = meter.read();
    double joules = 0.0;
    // Read every 10 ms (more often than the wrap period) for 2 s.
    for (int i = 0; i < 200; ++i) {
        clock.advance(0.01);
        joules = meter.read().joules;
    }
    const double measured = joules - before.joules;
    const double full = spec.idlePower
                        + spec.cores * spec.perCorePower
                        + spec.uncorePower;
    EXPECT_NEAR(measured, full * 2.0, 0.05 * full * 2.0);
}

TEST(RaplSim, CurrentDrawMatchesPackagePower)
{
    const auto spec = CpuSpec::server16Core();
    CpuDutModel cpu(spec);
    cpu.setProgram({{0.0, 10.0, 8, 1.0}});
    EXPECT_NEAR(cpu.current(0, 5.0, 12.0) * 12.0,
                cpu.packagePower(5.0), 1e-9);
}

} // namespace
} // namespace ps3
