/**
 * @file
 * Multi-resolution history tests: bucket fold/merge semantics, tier
 * accumulator alignment, the cascaded History (1 kHz -> 10 Hz ->
 * 1 Hz exactness, rollover, windowed queries), client-side
 * addBucket() feeding, and the offline dump-file query engine
 * (windowFromDump / bucketsFromDump). The transient-preservation
 * property — every raw sample's power bounded by its covering
 * bucket's [min, max] — is asserted at each layer; it is the whole
 * point of shipping min/max instead of plain averages
 * (docs/HISTORY.md).
 */

#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <random>
#include <thread>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "host/dump_reader.hpp"
#include "host/dump_writer.hpp"
#include "host/history.hpp"

namespace ps3::host {
namespace {

constexpr double kRate = 20000.0; // nominal raw rate (Hz)
constexpr double kDt = 1.0 / kRate;

/** A one-pair sample at `time` drawing `watts` at 12 V. */
Sample
sampleAt(double time, double watts)
{
    Sample sample;
    sample.time = time;
    sample.present[0] = true;
    sample.voltage[0] = 12.0;
    sample.current[0] = watts / 12.0;
    return sample;
}

/** Feed `count` samples from `start` at kRate into `history`. */
void
feed(History &history, double start, std::size_t count,
     double watts, double spike_every = 0.0, double spike_watts = 0.0)
{
    for (std::size_t i = 0; i < count; ++i) {
        const double t = start + kDt * static_cast<double>(i);
        double w = watts;
        if (spike_every > 0.0
            && std::fmod(static_cast<double>(i), spike_every) == 0.0)
            w = spike_watts;
        history.addSample(sampleAt(t, w));
    }
}

// ----- tier helpers ------------------------------------------------------

TEST(HistoryTier, PeriodsAndNames)
{
    EXPECT_DOUBLE_EQ(tierPeriodSeconds(Tier::Raw), 0.0);
    EXPECT_DOUBLE_EQ(tierPeriodSeconds(Tier::Hz1000), 1e-3);
    EXPECT_DOUBLE_EQ(tierPeriodSeconds(Tier::Hz10), 0.1);
    EXPECT_DOUBLE_EQ(tierPeriodSeconds(Tier::Hz1), 1.0);
    EXPECT_EQ(tierName(Tier::Raw), "raw");
    EXPECT_EQ(tierName(Tier::Hz1000), "1kHz");
    EXPECT_EQ(tierName(Tier::Hz10), "10Hz");
    EXPECT_EQ(tierName(Tier::Hz1), "1Hz");
}

TEST(HistoryTier, ParsesNamesCaseInsensitively)
{
    EXPECT_EQ(tierFromString("raw"), Tier::Raw);
    EXPECT_EQ(tierFromString("20kHz"), Tier::Raw);
    EXPECT_EQ(tierFromString("1kHz"), Tier::Hz1000);
    EXPECT_EQ(tierFromString("1KHZ"), Tier::Hz1000);
    EXPECT_EQ(tierFromString("1000"), Tier::Hz1000);
    EXPECT_EQ(tierFromString("10hz"), Tier::Hz10);
    EXPECT_EQ(tierFromString("1hz"), Tier::Hz1);
    EXPECT_FALSE(tierFromString("2khz").has_value());
    EXPECT_FALSE(tierFromString("").has_value());
}

// ----- HistoryBucket -----------------------------------------------------

TEST(HistoryBucket, FoldTracksExtremesMeanAndEnergy)
{
    HistoryBucket bucket;
    std::array<double, kMaxPairs> voltage{};
    std::array<double, kMaxPairs> current{};
    voltage[0] = 12.0;
    for (const double amps : {1.0, 4.0, 2.0}) {
        current[0] = amps;
        bucket.fold(0x01, voltage, current, kDt);
    }
    EXPECT_EQ(bucket.samples, 3u);
    EXPECT_EQ(bucket.presentMask, 0x01);
    EXPECT_DOUBLE_EQ(bucket.minPower, 12.0);
    EXPECT_DOUBLE_EQ(bucket.maxPower, 48.0);
    EXPECT_DOUBLE_EQ(bucket.meanPower(), 28.0);
    EXPECT_DOUBLE_EQ(bucket.energyJoules, 84.0 * kDt);
    EXPECT_DOUBLE_EQ(bucket.meanVoltage(0), 12.0);
    EXPECT_NEAR(bucket.meanCurrent(0), 7.0 / 3.0, 1e-12);
}

TEST(HistoryBucket, MergeMatchesFoldingTheUnion)
{
    std::array<double, kMaxPairs> voltage{};
    std::array<double, kMaxPairs> current{};
    voltage[0] = 12.0;
    voltage[1] = 5.0;

    HistoryBucket all, left, right;
    int i = 0;
    for (const double amps : {1.0, 2.0, 3.0, 4.0}) {
        current[0] = amps;
        current[1] = 0.5 * amps;
        all.fold(0x03, voltage, current, kDt);
        (i++ < 2 ? left : right).fold(0x03, voltage, current, kDt);
    }
    left.merge(right);
    EXPECT_EQ(left.samples, all.samples);
    EXPECT_DOUBLE_EQ(left.minPower, all.minPower);
    EXPECT_DOUBLE_EQ(left.maxPower, all.maxPower);
    EXPECT_DOUBLE_EQ(left.sumPower, all.sumPower);
    EXPECT_DOUBLE_EQ(left.energyJoules, all.energyJoules);
    EXPECT_DOUBLE_EQ(left.sumVoltage[1], all.sumVoltage[1]);
    EXPECT_DOUBLE_EQ(left.sumCurrent[1], all.sumCurrent[1]);

    // Merging into an empty bucket adopts the payload but keeps the
    // receiver's window bounds (the cascade's aligned parent).
    HistoryBucket parent;
    parent.startTime = 0.0;
    parent.endTime = 0.1;
    parent.merge(all);
    EXPECT_EQ(parent.samples, all.samples);
    EXPECT_DOUBLE_EQ(parent.startTime, 0.0);
    EXPECT_DOUBLE_EQ(parent.endTime, 0.1);
}

// ----- TierAccumulator ---------------------------------------------------

TEST(TierAccumulator, RejectsRawTierAndBadRate)
{
    EXPECT_THROW(TierAccumulator(Tier::Raw, kRate), UsageError);
    EXPECT_THROW(TierAccumulator(Tier::Hz1000, 0.0), UsageError);
    EXPECT_THROW(TierAccumulator(Tier::Hz1000, -5.0), UsageError);
}

TEST(TierAccumulator, ClosesAlignedBucketsAtBoundaries)
{
    TierAccumulator accumulator(Tier::Hz1000, kRate);
    std::array<double, kMaxPairs> voltage{};
    std::array<double, kMaxPairs> current{};
    voltage[0] = 12.0;
    current[0] = 1.0;

    HistoryBucket closed;
    std::vector<HistoryBucket> out;
    // 40 samples at 20 kHz starting mid-bucket: crosses two 1 ms
    // boundaries.
    for (int i = 0; i < 40; ++i) {
        const double t = 0.0105 + kDt * i; // starts inside [10, 11) ms
        if (accumulator.fold(t, 0x01, voltage, current, closed))
            out.push_back(closed);
    }
    ASSERT_EQ(out.size(), 2u);
    EXPECT_DOUBLE_EQ(out[0].startTime, 0.010);
    EXPECT_DOUBLE_EQ(out[0].endTime, 0.011);
    EXPECT_EQ(out[0].samples, 10u); // the half bucket it started in
    EXPECT_DOUBLE_EQ(out[1].startTime, 0.011);
    EXPECT_EQ(out[1].samples, 20u); // one full 1 ms bucket
    EXPECT_EQ(accumulator.openSamples(), 10u);

    // flush() hands out the partial tail exactly once.
    ASSERT_TRUE(accumulator.flush(closed));
    EXPECT_EQ(closed.samples, 10u);
    EXPECT_FALSE(accumulator.flush(closed));
    EXPECT_EQ(accumulator.openSamples(), 0u);
}

// ----- History cascade ---------------------------------------------------

TEST(History, RejectsBadRateAndRawQueries)
{
    EXPECT_THROW(History(-1.0), UsageError);
    History history(kRate);
    EXPECT_THROW(history.buckets(Tier::Raw, 0.0, 1.0), UsageError);
    EXPECT_THROW(history.window(Tier::Raw, 0.0, 1.0), UsageError);
    EXPECT_THROW(history.addBucket(Tier::Raw, HistoryBucket{}),
                 UsageError);
}

TEST(History, CascadeIsExactAcrossTiers)
{
    History history(kRate);
    // 2.5 s of stream with a spike every 977 samples: the 1 Hz tier
    // closes two buckets, each the exact merge of its children.
    feed(history, 0.0, 50000, 24.0, 977.0, 180.0);
    EXPECT_EQ(history.samplesSeen(), 50000u);

    const double inf = std::numeric_limits<double>::infinity();
    const auto fine = history.buckets(Tier::Hz1000, -inf, inf);
    const auto mid = history.buckets(Tier::Hz10, -inf, inf);
    const auto coarse = history.buckets(Tier::Hz1, -inf, inf);
    ASSERT_FALSE(fine.empty());
    ASSERT_FALSE(mid.empty());
    ASSERT_FALSE(coarse.empty());

    // Every tier accounts for every sample (closed + open buckets).
    for (const auto *tier_buckets : {&fine, &mid, &coarse}) {
        std::uint64_t samples = 0;
        for (const auto &bucket : *tier_buckets)
            samples += bucket.samples;
        EXPECT_EQ(samples, 50000u);
    }

    // A coarse bucket equals the merge of the fine buckets it spans.
    const auto &parent = coarse.front();
    HistoryBucket rebuilt;
    rebuilt.startTime = parent.startTime;
    rebuilt.endTime = parent.endTime;
    for (const auto &child : mid) {
        if (child.startTime >= parent.startTime
            && child.startTime < parent.endTime)
            rebuilt.merge(child);
    }
    EXPECT_EQ(rebuilt.samples, parent.samples);
    EXPECT_DOUBLE_EQ(rebuilt.minPower, parent.minPower);
    EXPECT_DOUBLE_EQ(rebuilt.maxPower, parent.maxPower);
    EXPECT_DOUBLE_EQ(rebuilt.sumPower, parent.sumPower);
    EXPECT_DOUBLE_EQ(rebuilt.energyJoules, parent.energyJoules);

    // Transient preservation: the spikes survive into every tier's
    // max even though they are invisible in the mean.
    EXPECT_DOUBLE_EQ(coarse.front().maxPower, 180.0);
    EXPECT_DOUBLE_EQ(mid.front().maxPower, 180.0);
    EXPECT_LT(coarse.front().meanPower(), 25.0);

    // Energy across tiers is identical (each sample counted once
    // with the same nominal dt).
    double fine_energy = 0.0, coarse_energy = 0.0;
    for (const auto &bucket : fine)
        fine_energy += bucket.energyJoules;
    for (const auto &bucket : coarse)
        coarse_energy += bucket.energyJoules;
    EXPECT_NEAR(fine_energy, coarse_energy, 1e-9);
    EXPECT_NEAR(fine_energy, history.window(Tier::Hz1, -inf, inf)
                                 .energyJoules,
                1e-9);
}

TEST(History, WindowQueryAggregatesOnlyIntersectingBuckets)
{
    History history(kRate);
    feed(history, 0.0, 40000, 12.0); // 2 s at 12 W
    // Query exactly the second half at the 10 Hz tier.
    const auto stats = history.window(Tier::Hz10, 1.0, 2.0);
    EXPECT_EQ(stats.buckets, 10u);
    EXPECT_EQ(stats.samples, 20000u);
    EXPECT_NEAR(stats.energyJoules, 12.0, 1e-9);
    EXPECT_DOUBLE_EQ(stats.meanPower, 12.0);
    EXPECT_DOUBLE_EQ(stats.minPower, 12.0);
    EXPECT_DOUBLE_EQ(stats.maxPower, 12.0);
    EXPECT_NEAR(stats.coverageSeconds, 1.0, 1e-9);

    // An empty window reports zero cleanly.
    const auto none = history.window(Tier::Hz10, 50.0, 60.0);
    EXPECT_EQ(none.samples, 0u);
    EXPECT_DOUBLE_EQ(none.meanPower, 0.0);
    EXPECT_DOUBLE_EQ(none.energyJoules, 0.0);
}

TEST(History, RolloverEvictsOldestButKeepsCoarseSummary)
{
    History::Options options;
    options.capacityHz1000 = 16; // 16 ms of fine history
    options.capacityHz10 = 1024;
    options.capacityHz1 = 256;
    History history(kRate, options);
    feed(history, 0.0, 20000, 10.0); // 1 s

    const double inf = std::numeric_limits<double>::infinity();
    const auto fine = history.buckets(Tier::Hz1000, -inf, inf);
    // 16 closed retained + the open bucket.
    EXPECT_LE(fine.size(), 17u);
    EXPECT_GT(history.bucketsClosed(Tier::Hz1000), 900u);
    // The fine ring forgot the start of the stream...
    EXPECT_GT(fine.front().startTime, 0.9);
    // ...but the coarser tiers still summarise all of it.
    std::uint64_t coarse_samples = 0;
    for (const auto &bucket : history.buckets(Tier::Hz10, -inf, inf))
        coarse_samples += bucket.samples;
    EXPECT_EQ(coarse_samples, 20000u);
}

TEST(History, AddBucketFeedsOwnTierAndCascadesUpward)
{
    // A network client subscribed at 1 kHz: buckets arrive already
    // aggregated and must land in the 1 kHz ring and cascade to
    // 10 Hz / 1 Hz, with finer resolution simply absent.
    History history(kRate);
    TierAccumulator accumulator(Tier::Hz1000, kRate);
    std::array<double, kMaxPairs> voltage{};
    std::array<double, kMaxPairs> current{};
    voltage[0] = 12.0;

    HistoryBucket closed;
    std::mt19937 rng(7);
    std::uniform_real_distribution<double> amps(0.5, 4.0);
    for (int i = 0; i < 6000; ++i) { // 300 ms
        current[0] = amps(rng);
        if (accumulator.fold(kDt * i, 0x01, voltage, current,
                             closed))
            history.addBucket(Tier::Hz1000, closed);
    }
    EXPECT_GT(history.samplesSeen(), 5000u);

    const double inf = std::numeric_limits<double>::infinity();
    const auto fine = history.buckets(Tier::Hz1000, -inf, inf);
    const auto mid = history.buckets(Tier::Hz10, -inf, inf);
    ASSERT_FALSE(fine.empty());
    ASSERT_FALSE(mid.empty());
    // The 10 Hz parent of the first 100 fine buckets preserves their
    // extremes exactly.
    double min_power = fine[0].minPower, max_power = fine[0].maxPower;
    for (const auto &bucket : fine) {
        if (bucket.startTime >= mid.front().endTime)
            break;
        min_power = std::min(min_power, bucket.minPower);
        max_power = std::max(max_power, bucket.maxPower);
    }
    EXPECT_DOUBLE_EQ(mid.front().minPower, min_power);
    EXPECT_DOUBLE_EQ(mid.front().maxPower, max_power);
}

TEST(History, ConcurrentQueriesDuringFeeding)
{
    // The producer folds while two threads query: exercises the
    // mutex under TSan (tsan-check) and asserts nothing torn leaks
    // out (every observed window is internally consistent).
    History history(kRate);
    std::atomic<bool> stop{false};
    std::thread producer([&] {
        for (int i = 0; i < 100000 && !stop.load(); ++i)
            history.addSample(sampleAt(kDt * i, 24.0));
        stop.store(true);
    });
    const double inf = std::numeric_limits<double>::infinity();
    for (int readers = 0; readers < 2000; ++readers) {
        const auto stats = history.window(Tier::Hz1000, -inf, inf);
        if (stats.samples > 0) {
            EXPECT_DOUBLE_EQ(stats.minPower, 24.0);
            EXPECT_DOUBLE_EQ(stats.maxPower, 24.0);
            EXPECT_NEAR(stats.energyJoules,
                        24.0 * kDt
                            * static_cast<double>(stats.samples),
                        1e-6);
        }
    }
    stop.store(true);
    producer.join();
}

// ----- transient preservation (the acceptance property) ------------------

TEST(History, BucketsBoundEveryRawSample)
{
    // A noisy load with rare extreme spikes; every raw sample's
    // power must lie within [minPower, maxPower] of the bucket
    // covering its timestamp, at every tier.
    History history(kRate);
    std::mt19937 rng(42);
    std::uniform_real_distribution<double> noise(20.0, 30.0);
    std::vector<Sample> raw;
    for (int i = 0; i < 30000; ++i) { // 1.5 s
        double watts = noise(rng);
        if (i % 4999 == 0)
            watts = 250.0; // a 50 µs transient
        raw.push_back(sampleAt(kDt * i, watts));
        history.addSample(raw.back());
    }

    const double inf = std::numeric_limits<double>::infinity();
    for (const auto tier : {Tier::Hz1000, Tier::Hz10, Tier::Hz1}) {
        const auto buckets = history.buckets(tier, -inf, inf);
        ASSERT_FALSE(buckets.empty());
        // A boundary sample may fold into either neighbouring
        // bucket under FP alignment; the property is that at least
        // one bucket covering (a slightly widened window around)
        // its timestamp bounds its power.
        std::size_t covered = 0;
        for (const auto &sample : raw) {
            const double power = sample.totalPower();
            bool bounded = false;
            for (const auto &bucket : buckets) {
                if (sample.time < bucket.startTime - 1e-9
                    || sample.time >= bucket.endTime + 1e-9)
                    continue;
                if (power >= bucket.minPower - 1e-9
                    && power <= bucket.maxPower + 1e-9) {
                    bounded = true;
                    break;
                }
            }
            if (bounded)
                ++covered;
            EXPECT_TRUE(bounded)
                << "sample at t=" << sample.time << " power "
                << power << " unbounded at " << tierName(tier);
        }
        EXPECT_EQ(covered, raw.size());
        // And the spike is visible at this tier's max.
        double max_power = 0.0;
        for (const auto &bucket : buckets)
            max_power = std::max(max_power, bucket.maxPower);
        EXPECT_DOUBLE_EQ(max_power, 250.0);
    }
}

// ----- dump-file queries -------------------------------------------------

class DumpQuery : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = "/tmp/ps3_history_dump_"
                + std::to_string(static_cast<long>(::getpid()))
                + ".ps3b";
        std::filesystem::remove(path_);
        DumpWriter writer(path_,
                          "# sample_rate_hz 20000\n# test dump\n");
        for (int i = 0; i < 20000; ++i) { // 1 s
            DumpRecord record{};
            record.time = kDt * i;
            record.presentMask = 0x1;
            record.voltage[0] = 12.0;
            // 2 A baseline, 20 A spike once per 6000 samples. The
            // spike offset keeps it off exact bucket boundaries,
            // where FP alignment may place it in either neighbour.
            record.current[0] = i % 6000 == 100 ? 20.0 : 2.0;
            writer.push(record);
        }
    }

    void TearDown() override { std::filesystem::remove(path_); }

    std::string path_;
};

TEST_F(DumpQuery, WindowFromDumpIntegratesTheWindowOnly)
{
    const auto file = DumpFile::load(path_);
    const auto full = windowFromDump(
        file, -std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::infinity());
    EXPECT_EQ(full.samples, 20000u);
    // ~24 W for 1 s with four one-sample 240 W spikes.
    EXPECT_NEAR(full.energyJoules, 24.0, 0.2);
    EXPECT_DOUBLE_EQ(full.maxPower, 240.0);
    EXPECT_DOUBLE_EQ(full.minPower, 24.0);

    const auto half = windowFromDump(file, 0.25, 0.75);
    EXPECT_EQ(half.samples, 10000u);
    EXPECT_NEAR(half.coverageSeconds, 0.5, 1e-6);
    EXPECT_NEAR(half.energyJoules, 12.1, 0.3);

    const auto none = windowFromDump(file, 10.0, 11.0);
    EXPECT_EQ(none.samples, 0u);
    EXPECT_DOUBLE_EQ(none.energyJoules, 0.0);
}

TEST_F(DumpQuery, BucketsFromDumpMatchLiveAggregation)
{
    const auto file = DumpFile::load(path_);
    const auto buckets = bucketsFromDump(file, Tier::Hz10);
    ASSERT_EQ(buckets.size(), 10u);
    std::uint64_t samples = 0;
    double energy = 0.0;
    for (const auto &bucket : buckets) {
        samples += bucket.samples;
        energy += bucket.energyJoules;
    }
    EXPECT_EQ(samples, 20000u);
    EXPECT_NEAR(energy, 24.0, 0.2);
    // Spikes at i = 100, 6100, 12100, 18100 land in buckets 0, 3,
    // 6 and 9; the others stay at the 24 W baseline.
    EXPECT_DOUBLE_EQ(buckets[0].maxPower, 240.0);
    EXPECT_DOUBLE_EQ(buckets[3].maxPower, 240.0);
    EXPECT_DOUBLE_EQ(buckets[6].maxPower, 240.0);
    EXPECT_DOUBLE_EQ(buckets[9].maxPower, 240.0);
    EXPECT_DOUBLE_EQ(buckets[1].maxPower, 24.0);

    // Raw-sample bounding holds for the offline path too. Boundary
    // samples may belong to either neighbouring bucket under FP
    // alignment, so accept any bucket whose (slightly widened)
    // window contains the timestamp and whose min/max bound the
    // sample.
    for (const auto &sample : file.samples()) {
        bool bounded = false;
        for (const auto &bucket : buckets) {
            if (sample.time < bucket.startTime - 1e-9
                || sample.time >= bucket.endTime + 1e-9)
                continue;
            if (sample.totalPower >= bucket.minPower - 1e-9
                && sample.totalPower <= bucket.maxPower + 1e-9) {
                bounded = true;
                break;
            }
        }
        EXPECT_TRUE(bounded)
            << "sample at t=" << sample.time << " unbounded";
    }

    EXPECT_THROW(bucketsFromDump(file, Tier::Raw), UsageError);
}

TEST(DumpQueryErrors, HeaderlessSingleSampleDumpCannotBucket)
{
    const std::string path =
        "/tmp/ps3_history_headerless_"
        + std::to_string(static_cast<long>(::getpid())) + ".txt";
    {
        std::ofstream out(path);
        out << "S 1.0 12.0 2.0 24.0 24.0\n";
    }
    const auto file = DumpFile::load(path);
    EXPECT_EQ(file.sampleRateHz(), 0.0);
    // No header rate and fewer than two samples: clean error.
    EXPECT_THROW(bucketsFromDump(file, Tier::Hz1000), UsageError);
    // windowFromDump still works — it has no dt to infer for the
    // first sample, so it contributes zero energy.
    const auto stats = windowFromDump(
        file, -std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::infinity());
    EXPECT_EQ(stats.samples, 1u);
    EXPECT_DOUBLE_EQ(stats.maxPower, 24.0);
    std::filesystem::remove(path);
}

} // namespace
} // namespace ps3::host
