/**
 * @file
 * Tests for the observability layer (src/obs): metric primitives,
 * registry semantics, snapshot diffing, and the three exporters.
 * The Prometheus test validates the text exposition grammar the
 * paper-reproduction tools emit via --stats=prom.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <thread>
#include <vector>

#include "common/errors.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/registry.hpp"

namespace ps3::obs {
namespace {

// ---------------------------------------------------------------- Counter

TEST(ObsCounter, StartsAtZeroAndAccumulates)
{
    Counter counter;
    EXPECT_EQ(counter.value(), 0u);
    counter.inc();
    counter.inc(41);
    if (kEnabled)
        EXPECT_EQ(counter.value(), 42u);
    else
        EXPECT_EQ(counter.value(), 0u);
}

TEST(ObsCounter, ConcurrentIncrementsLandExactly)
{
    if (!kEnabled)
        GTEST_SKIP() << "observability compiled out";

    Counter counter;
    constexpr unsigned kThreads = 8;
    constexpr std::uint64_t kPerThread = 100'000;

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&counter] {
            for (std::uint64_t i = 0; i < kPerThread; ++i)
                counter.inc();
        });
    }
    for (auto &thread : threads)
        thread.join();

    EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

// ------------------------------------------------------------------ Gauge

TEST(ObsGauge, SetAddSub)
{
    if (!kEnabled)
        GTEST_SKIP() << "observability compiled out";

    Gauge gauge;
    gauge.set(10);
    gauge.add(5);
    gauge.sub(3);
    EXPECT_EQ(gauge.value(), 12);
    gauge.sub(20);
    EXPECT_EQ(gauge.value(), -8); // signed: may cross zero
}

TEST(ObsGauge, UpdateMaxOnlyRaises)
{
    if (!kEnabled)
        GTEST_SKIP() << "observability compiled out";

    Gauge hwm;
    hwm.updateMax(100);
    EXPECT_EQ(hwm.value(), 100);
    hwm.updateMax(50); // lower: no effect
    EXPECT_EQ(hwm.value(), 100);
    hwm.updateMax(101);
    EXPECT_EQ(hwm.value(), 101);
}

TEST(ObsGauge, ConcurrentUpdateMaxKeepsMaximum)
{
    if (!kEnabled)
        GTEST_SKIP() << "observability compiled out";

    Gauge hwm;
    constexpr unsigned kThreads = 8;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&hwm, t] {
            for (std::int64_t v = t; v < 10'000; v += kThreads)
                hwm.updateMax(v);
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(hwm.value(), 9'999);
}

// -------------------------------------------------------------- Histogram

TEST(ObsHistogram, BucketIndexAtPowerOfTwoBoundaries)
{
    // Bucket 0 holds the value 0; bucket i holds [2^(i-1), 2^i).
    EXPECT_EQ(Histogram::bucketIndex(0), 0u);
    EXPECT_EQ(Histogram::bucketIndex(1), 1u);
    EXPECT_EQ(Histogram::bucketIndex(2), 2u);
    EXPECT_EQ(Histogram::bucketIndex(3), 2u);
    EXPECT_EQ(Histogram::bucketIndex(4), 3u);
    EXPECT_EQ(Histogram::bucketIndex(7), 3u);
    EXPECT_EQ(Histogram::bucketIndex(8), 4u);
    for (unsigned k = 1; k < 39; ++k) {
        const std::uint64_t pow2 = std::uint64_t{1} << k;
        EXPECT_EQ(Histogram::bucketIndex(pow2), k + 1) << "2^" << k;
        EXPECT_EQ(Histogram::bucketIndex(pow2 - 1), k) << "2^" << k
                                                       << " - 1";
    }
    // Everything >= 2^(kBucketCount-2) lands in the overflow bucket.
    EXPECT_EQ(Histogram::bucketIndex(UINT64_MAX),
              Histogram::kBucketCount - 1);
    EXPECT_EQ(Histogram::bucketIndex(std::uint64_t{1} << 63),
              Histogram::kBucketCount - 1);
}

TEST(ObsHistogram, BucketUpperBounds)
{
    EXPECT_EQ(Histogram::bucketUpperBound(0), 0u);
    EXPECT_EQ(Histogram::bucketUpperBound(1), 1u);
    EXPECT_EQ(Histogram::bucketUpperBound(2), 3u);
    EXPECT_EQ(Histogram::bucketUpperBound(10), 1023u);
    EXPECT_EQ(Histogram::bucketUpperBound(Histogram::kBucketCount - 1),
              UINT64_MAX);
}

TEST(ObsHistogram, ObserveCountsAndSums)
{
    if (!kEnabled)
        GTEST_SKIP() << "observability compiled out";

    Histogram histogram;
    histogram.observe(0);
    histogram.observe(1);
    histogram.observe(2);
    histogram.observe(3);
    histogram.observe(1024);
    EXPECT_EQ(histogram.count(), 5u);
    EXPECT_EQ(histogram.sum(), 1030u);
    EXPECT_EQ(histogram.bucketCount(0), 1u); // value 0
    EXPECT_EQ(histogram.bucketCount(1), 1u); // value 1
    EXPECT_EQ(histogram.bucketCount(2), 2u); // values 2, 3
    EXPECT_EQ(histogram.bucketCount(11), 1u); // 1024 in [1024, 2048)
}

TEST(ObsHistogram, ConcurrentObservesLandExactly)
{
    if (!kEnabled)
        GTEST_SKIP() << "observability compiled out";

    Histogram histogram;
    constexpr unsigned kThreads = 8;
    constexpr std::uint64_t kPerThread = 50'000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&histogram] {
            for (std::uint64_t i = 0; i < kPerThread; ++i)
                histogram.observe(i & 0xFF);
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(histogram.count(), kThreads * kPerThread);
}

TEST(ObsScopedTimer, ObservesOnDestruction)
{
    if (!kEnabled)
        GTEST_SKIP() << "observability compiled out";

    Histogram histogram;
    {
        ScopedTimer timer(histogram);
    }
    EXPECT_EQ(histogram.count(), 1u);
}

// --------------------------------------------------------------- Registry

TEST(ObsRegistry, SameNameAndLabelsReturnsSameInstance)
{
    Registry registry;
    Counter &a = registry.counter("ps3_test_total", "help");
    Counter &b = registry.counter("ps3_test_total", "other help");
    EXPECT_EQ(&a, &b);

    Counter &labelled = registry.counter("ps3_test_total", "help",
                                         {{"kind", "x"}});
    EXPECT_NE(&a, &labelled);
}

TEST(ObsRegistry, LabelOrderIsCanonicalised)
{
    Registry registry;
    Counter &a = registry.counter("ps3_test_total", "help",
                                  {{"b", "2"}, {"a", "1"}});
    Counter &b = registry.counter("ps3_test_total", "help",
                                  {{"a", "1"}, {"b", "2"}});
    EXPECT_EQ(&a, &b);
}

TEST(ObsRegistry, TypeConflictThrows)
{
    Registry registry;
    registry.counter("ps3_test_total", "help");
    EXPECT_THROW(registry.gauge("ps3_test_total", "help"), UsageError);
    EXPECT_THROW(registry.histogram("ps3_test_total", "help"),
                 UsageError);
}

TEST(ObsRegistry, SnapshotSortedAndFindable)
{
    if (!kEnabled)
        GTEST_SKIP() << "observability compiled out";

    Registry registry;
    registry.counter("ps3_zz_total", "z").inc(7);
    registry.gauge("ps3_aa_depth", "a").set(3);
    registry.histogram("ps3_mm_ns", "m").observe(5);

    const Snapshot snapshot = registry.snapshot();
    ASSERT_EQ(snapshot.samples.size(), 3u);
    EXPECT_EQ(snapshot.samples[0].name, "ps3_aa_depth");
    EXPECT_EQ(snapshot.samples[1].name, "ps3_mm_ns");
    EXPECT_EQ(snapshot.samples[2].name, "ps3_zz_total");
    EXPECT_EQ(snapshot.nonZeroCount(), 3u);

    const MetricSample *counter = snapshot.find("ps3_zz_total");
    ASSERT_NE(counter, nullptr);
    EXPECT_EQ(counter->value, 7);
    EXPECT_EQ(counter->type, MetricType::Counter);

    const MetricSample *histogram = snapshot.find("ps3_mm_ns");
    ASSERT_NE(histogram, nullptr);
    EXPECT_EQ(histogram->histogram.count, 1u);
    EXPECT_EQ(histogram->histogram.sum, 5u);
    EXPECT_EQ(histogram->histogram.buckets.size(),
              Histogram::kBucketCount);

    EXPECT_EQ(snapshot.find("ps3_absent_total"), nullptr);
}

TEST(ObsRegistry, SharedSeriesAccumulatesAcrossRegistrants)
{
    if (!kEnabled)
        GTEST_SKIP() << "observability compiled out";

    // Two components registering the same (name, labels) write into
    // one series — the documented aggregation behaviour.
    Registry registry;
    registry.counter("ps3_shared_total", "help").inc(2);
    registry.counter("ps3_shared_total", "help").inc(3);
    const Snapshot snapshot = registry.snapshot();
    ASSERT_NE(snapshot.find("ps3_shared_total"), nullptr);
    EXPECT_EQ(snapshot.find("ps3_shared_total")->value, 5);
}

// ----------------------------------------------------------------- diff()

TEST(ObsSnapshot, DiffSubtractsCountersKeepsGauges)
{
    if (!kEnabled)
        GTEST_SKIP() << "observability compiled out";

    Registry registry;
    Counter &counter = registry.counter("ps3_c_total", "c");
    Gauge &gauge = registry.gauge("ps3_g_depth", "g");
    Histogram &histogram = registry.histogram("ps3_h_ns", "h");

    counter.inc(10);
    gauge.set(100);
    histogram.observe(4);
    const Snapshot before = registry.snapshot();

    counter.inc(5);
    gauge.set(42);
    histogram.observe(4);
    histogram.observe(1'000);
    const Snapshot after = registry.snapshot();

    const Snapshot deltas = diff(before, after);
    EXPECT_EQ(deltas.find("ps3_c_total")->value, 5);
    EXPECT_EQ(deltas.find("ps3_g_depth")->value, 42); // level, not rate
    const auto &h = deltas.find("ps3_h_ns")->histogram;
    EXPECT_EQ(h.count, 2u);
    EXPECT_EQ(h.sum, 1'004u);
    EXPECT_EQ(h.buckets[Histogram::bucketIndex(4)], 1u);
    EXPECT_EQ(h.buckets[Histogram::bucketIndex(1'000)], 1u);
}

TEST(ObsSnapshot, DiffKeepsSeriesNewInAfter)
{
    if (!kEnabled)
        GTEST_SKIP() << "observability compiled out";

    Registry registry;
    const Snapshot before = registry.snapshot();
    registry.counter("ps3_new_total", "n").inc(9);
    const Snapshot deltas = diff(before, registry.snapshot());
    ASSERT_NE(deltas.find("ps3_new_total"), nullptr);
    EXPECT_EQ(deltas.find("ps3_new_total")->value, 9);
}

TEST(ObsSnapshot, DiffClampsCounterRegressionToZero)
{
    // Hand-built snapshots: a counter that (impossibly) went
    // backwards must clamp to 0, never go negative.
    MetricSample sample;
    sample.name = "ps3_c_total";
    sample.type = MetricType::Counter;
    Snapshot before, after;
    sample.value = 10;
    before.samples.push_back(sample);
    sample.value = 4;
    after.samples.push_back(sample);
    EXPECT_EQ(diff(before, after).find("ps3_c_total")->value, 0);
}

// -------------------------------------------------------------- exporters

TEST(ObsExposition, ParseFormat)
{
    EXPECT_EQ(parseFormat("table"), Format::Table);
    EXPECT_EQ(parseFormat("csv"), Format::Csv);
    EXPECT_EQ(parseFormat("prom"), Format::Prometheus);
    EXPECT_EQ(parseFormat("prometheus"), Format::Prometheus);
    EXPECT_EQ(parseFormat("json"), std::nullopt);
    EXPECT_EQ(parseFormat(""), std::nullopt);
}

TEST(ObsExposition, CsvHasHeaderAndOneRowPerSeries)
{
    if (!kEnabled)
        GTEST_SKIP() << "observability compiled out";

    Registry registry;
    registry.counter("ps3_c_total", "c", {{"port", "emulated"}}).inc(3);
    registry.histogram("ps3_h_ns", "h").observe(7);

    std::ostringstream out;
    writeCsv(out, registry.snapshot());
    std::istringstream lines(out.str());
    std::string line;
    std::vector<std::string> rows;
    while (std::getline(lines, line))
        rows.push_back(line);
    ASSERT_EQ(rows.size(), 3u); // header + 2 series
    EXPECT_EQ(rows[0], "name,labels,type,value,count,sum");
    EXPECT_NE(rows[1].find("ps3_c_total"), std::string::npos);
    EXPECT_NE(rows[1].find("port=emulated"), std::string::npos);
    EXPECT_NE(rows[2].find("ps3_h_ns"), std::string::npos);
}

/**
 * Validate the Prometheus text exposition grammar on a mixed
 * snapshot: HELP/TYPE once per family, label syntax, cumulative
 * non-decreasing buckets ending in +Inf == _count.
 */
TEST(ObsExposition, PrometheusGrammar)
{
    if (!kEnabled)
        GTEST_SKIP() << "observability compiled out";

    Registry registry;
    registry.counter("ps3_c_total", "counter help",
                     {{"kind", "drop"}})
        .inc(3);
    registry.counter("ps3_c_total", "counter help",
                     {{"kind", "corrupt"}})
        .inc(1);
    registry.gauge("ps3_g_depth", "gauge help").set(12);
    Histogram &histogram = registry.histogram("ps3_h_ns", "hist help");
    histogram.observe(0);
    histogram.observe(3);
    histogram.observe(100);

    std::ostringstream out;
    writePrometheus(out, registry.snapshot());
    const std::string text = out.str();

    // HELP and TYPE exactly once per family (two ps3_c_total series
    // share one header pair).
    auto countOccurrences = [&text](const std::string &needle) {
        std::size_t n = 0;
        for (std::size_t pos = text.find(needle);
             pos != std::string::npos;
             pos = text.find(needle, pos + 1)) {
            ++n;
        }
        return n;
    };
    EXPECT_EQ(countOccurrences("# HELP ps3_c_total counter help\n"),
              1u);
    EXPECT_EQ(countOccurrences("# TYPE ps3_c_total counter\n"), 1u);
    EXPECT_EQ(countOccurrences("# TYPE ps3_g_depth gauge\n"), 1u);
    EXPECT_EQ(countOccurrences("# TYPE ps3_h_ns histogram\n"), 1u);

    // Labelled scalar series.
    EXPECT_NE(text.find("ps3_c_total{kind=\"drop\"} 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("ps3_c_total{kind=\"corrupt\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("ps3_g_depth 12\n"), std::string::npos);

    // Histogram: walk the _bucket series in order and require
    // cumulative counts to be non-decreasing, ending in +Inf.
    std::istringstream lines(text);
    std::string line;
    std::uint64_t last_cumulative = 0;
    bool saw_inf = false;
    unsigned buckets = 0;
    while (std::getline(lines, line)) {
        if (line.rfind("ps3_h_ns_bucket{le=", 0) != 0)
            continue;
        ++buckets;
        const auto space = line.rfind(' ');
        const std::uint64_t cumulative =
            std::stoull(line.substr(space + 1));
        EXPECT_GE(cumulative, last_cumulative) << line;
        last_cumulative = cumulative;
        saw_inf = line.find("le=\"+Inf\"") != std::string::npos;
    }
    EXPECT_GE(buckets, 2u);
    EXPECT_TRUE(saw_inf) << "last bucket must be +Inf";
    EXPECT_EQ(last_cumulative, 3u) << "+Inf bucket == observations";
    EXPECT_NE(text.find("ps3_h_ns_sum 103\n"), std::string::npos);
    EXPECT_NE(text.find("ps3_h_ns_count 3\n"), std::string::npos);
}

TEST(ObsExposition, PrometheusEscapesLabelValues)
{
    if (!kEnabled)
        GTEST_SKIP() << "observability compiled out";

    Registry registry;
    registry.counter("ps3_c_total", "c", {{"path", "a\"b\\c"}}).inc(1);
    std::ostringstream out;
    writePrometheus(out, registry.snapshot());
    EXPECT_NE(out.str().find("path=\"a\\\"b\\\\c\""),
              std::string::npos);
}

TEST(ObsExposition, TableListsEverySeries)
{
    if (!kEnabled)
        GTEST_SKIP() << "observability compiled out";

    Registry registry;
    registry.counter("ps3_c_total", "c").inc(3);
    registry.histogram("ps3_h_ns", "h").observe(8);
    std::ostringstream out;
    writeTable(out, registry.snapshot());
    const std::string text = out.str();
    EXPECT_NE(text.find("ps3_c_total"), std::string::npos);
    EXPECT_NE(text.find("counter"), std::string::npos);
    // 8 lands in [8, 16): inclusive upper bound 15.
    EXPECT_NE(text.find("count=1 mean=8 max<=15"), std::string::npos);
}

// Registered instruments from the instrumented layers must be
// discoverable through the global registry by their documented names
// (docs/OBSERVABILITY.md).
TEST(ObsRegistry, GlobalIsSingletonAndStable)
{
    Registry &a = Registry::global();
    Registry &b = Registry::global();
    EXPECT_EQ(&a, &b);
}

} // namespace
} // namespace ps3::obs
