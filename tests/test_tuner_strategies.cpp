/**
 * @file
 * Tests for the adaptive search strategies and
 * AutoTuner::tuneAdaptive().
 */

#include <set>

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "host/sim_setup.hpp"
#include "pmt/vendor_sim.hpp"
#include "tuner/auto_tuner.hpp"
#include "tuner/strategies.hpp"

namespace ps3::tuner {
namespace {

SearchSpace
smallSpace()
{
    SearchSpace space;
    space.add("block_warps", {4, 8})
        .add("block_y", {2, 4})
        .add("frags_per_block", {2, 4})
        .add("frags_per_warp", {1, 2})
        .add("double_buffer", {0, 1});
    return space;
}

std::vector<double>
someClocks()
{
    return {1600.0, 1900.0, 2175.0};
}

TEST(RandomSearch, RespectsBudgetAndBatchSize)
{
    RandomSearchStrategy strategy(smallSpace(), someClocks(),
                                  /*budget=*/25, /*batch=*/8,
                                  /*seed=*/3);
    std::size_t total = 0;
    unsigned batches = 0;
    while (true) {
        const auto batch = strategy.nextBatch();
        if (batch.empty())
            break;
        EXPECT_LE(batch.size(), 8u);
        total += batch.size();
        strategy.observe({});
        ++batches;
    }
    EXPECT_EQ(total, 25u);
    EXPECT_EQ(batches, 4u); // 8+8+8+1
    EXPECT_EQ(strategy.proposedCount(), 25u);
}

TEST(RandomSearch, SamplesWithinTheSpace)
{
    const auto space = smallSpace();
    const auto clocks = someClocks();
    RandomSearchStrategy strategy(space, clocks, 100, 100, 1);
    const auto batch = strategy.nextBatch();
    const auto valid = space.enumerate();
    for (const auto &point : batch) {
        EXPECT_NE(std::find(valid.begin(), valid.end(), point.config),
                  valid.end());
        EXPECT_NE(std::find(clocks.begin(), clocks.end(),
                            point.clockMHz),
                  clocks.end());
    }
}

TEST(RandomSearch, Validation)
{
    SearchSpace empty;
    EXPECT_THROW(RandomSearchStrategy(empty, someClocks(), 10, 5, 1),
                 UsageError);
    EXPECT_THROW(RandomSearchStrategy(smallSpace(), {}, 10, 5, 1),
                 UsageError);
    EXPECT_THROW(RandomSearchStrategy(smallSpace(), someClocks(), 0,
                                      5, 1),
                 UsageError);
}

TEST(LocalSearch, ClimbsToALocalOptimum)
{
    // Synthetic objective: prefer higher clock and block_warps == 8.
    auto objective = [](const TuningPoint &p) {
        return p.clockMHz / 2175.0
               + (p.config.at("block_warps") == 8 ? 1.0 : 0.0);
    };

    LocalSearchStrategy strategy(smallSpace(), someClocks(),
                                 /*restarts=*/2, /*max_points=*/400,
                                 /*seed=*/5);
    MeasuredPoint best;
    while (true) {
        const auto batch = strategy.nextBatch();
        if (batch.empty())
            break;
        std::vector<MeasuredPoint> feedback;
        for (const auto &point : batch) {
            MeasuredPoint m;
            m.point = point;
            m.value = objective(point);
            if (m.value > best.value)
                best = m;
            feedback.push_back(std::move(m));
        }
        strategy.observe(feedback);
    }
    // The optimum (clock 2175, warps 8) must be found: the objective
    // is separable, so hill climbing cannot get stuck.
    EXPECT_DOUBLE_EQ(best.point.clockMHz, 2175.0);
    EXPECT_EQ(best.point.config.at("block_warps"), 8);
    // And with far fewer evaluations than the 96-point space x ... .
    EXPECT_LT(strategy.proposedCount(), 400u);
}

TEST(LocalSearch, HonoursHardBudget)
{
    LocalSearchStrategy strategy(smallSpace(), someClocks(), 50,
                                 /*max_points=*/30, 7);
    std::size_t total = 0;
    while (true) {
        const auto batch = strategy.nextBatch();
        if (batch.empty())
            break;
        total += batch.size();
        std::vector<MeasuredPoint> feedback;
        for (const auto &point : batch)
            feedback.push_back({point, 1.0});
        strategy.observe(feedback);
        ASSERT_LE(total, 30u);
    }
    EXPECT_LE(strategy.proposedCount(), 30u);
}

TEST(TuneAdaptive, FindsNearOptimalWithFractionOfMeasurements)
{
    const auto gpu_spec = dut::GpuSpec::rtx4000Ada().tuningVariant();
    auto rig = host::rigs::gpuRig(gpu_spec);
    auto sensor = rig.connect();

    BeamformerModel model(gpu_spec);
    TuningOptions options;
    options.interKernelGapSeconds = 0.01;
    AutoTuner tuner(*rig.gpu, *rig.firmware, sensor.get(), nullptr,
                    model, options);

    RandomSearchStrategy strategy(smallSpace(), model.clockRangeMHz(),
                                  /*budget=*/40, /*batch=*/20, 9);
    const auto result =
        tuner.tuneAdaptive(strategy, Objective::Performance);

    ASSERT_EQ(result.records.size(), 40u);
    double best = 0.0;
    for (const auto &record : result.records)
        best = std::max(best, record.tflops);
    // The small space's optimum at boost clock is ~65 TFLOP/s; a
    // 40-sample random search should land within 20%.
    EXPECT_GT(best, 45.0);
    EXPECT_GT(result.totalTuningSeconds, 0.0);
}

TEST(TuneAdaptive, RequiresExternalSensor)
{
    const auto gpu_spec = dut::GpuSpec::rtx4000Ada().tuningVariant();
    auto rig = host::rigs::gpuRig(gpu_spec);
    BeamformerModel model(gpu_spec);
    TuningOptions options;
    options.strategy = MeasurementStrategy::OnboardSensor;
    auto nvml = pmt::makeNvmlMeter(*rig.gpu, rig.firmware->clock(),
                                   pmt::NvmlMode::Instant);
    AutoTuner tuner(*rig.gpu, *rig.firmware, nullptr, nvml.get(),
                    model, options);
    RandomSearchStrategy strategy(smallSpace(), someClocks(), 5, 5,
                                  1);
    EXPECT_THROW(tuner.tuneAdaptive(strategy,
                                    Objective::Performance),
                 UsageError);
}

} // namespace
} // namespace ps3::tuner
