/**
 * @file
 * Tests for the asynchronous dump pipeline: the to_chars fast
 * formatter, the SPSC POD record ring (ordering, backpressure
 * policies, shutdown drain), DumpWriter round trips in both on-disk
 * formats (text v1 and binary v2, auto-detected by DumpFile::load),
 * and the PowerSensor-level binary dump path.
 */

#include <atomic>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <thread>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "common/csv_writer.hpp"
#include "common/errors.hpp"
#include "common/fast_format.hpp"
#include "host/dump_reader.hpp"
#include "host/dump_writer.hpp"
#include "host/sim_setup.hpp"
#include "transport/spsc_pod_ring.hpp"

namespace ps3::host {
namespace {

std::string
uniquePath(const std::string &tag, const std::string &ext)
{
    return "/tmp/ps3_dump_pipeline." + tag + "."
           + std::to_string(static_cast<long>(::getpid())) + ext;
}

// ----- fast formatter --------------------------------------------------

TEST(FastFormat, FixedMatchesSnprintf)
{
    const double cases[] = {0.0,       -0.0,   1.0,      -1.0,
                            0.5,       123.456, -123.456, 1e-7,
                            12345.6789, 1e9,    -2.5e-4,  999.99995,
                            50e-6,      0.123456789};
    for (double v : cases) {
        for (int decimals : {0, 1, 4, 6}) {
            char expected[128];
            std::snprintf(expected, sizeof(expected), "%.*f",
                          decimals, v);
            char actual[kMaxFixed64];
            const std::size_t n =
                formatFixed(actual, sizeof(actual), v, decimals);
            EXPECT_EQ(std::string(actual, n), expected)
                << "v=" << v << " decimals=" << decimals;
        }
    }
}

TEST(FastFormat, FixedSweepMatchesSnprintf)
{
    // Dense sweep across the magnitudes the dump writer emits.
    for (int i = -2000; i < 2000; ++i) {
        const double v = i * 0.0123;
        char expected[64];
        std::snprintf(expected, sizeof(expected), "%.4f", v);
        char actual[kMaxFixed64];
        const std::size_t n =
            formatFixed(actual, sizeof(actual), v, 4);
        ASSERT_EQ(std::string(actual, n), expected) << v;
    }
}

TEST(FastFormat, GeneralMatchesSnprintf)
{
    const double cases[] = {0.0,    1.0,    123.456, 1e7,
                            1e-5,   -42.25, 0.001,   12345678.9,
                            2.5e-8, 1234567.0};
    for (double v : cases) {
        for (int digits : {3, 6, 9}) {
            char expected[128];
            std::snprintf(expected, sizeof(expected), "%.*g", digits,
                          v);
            char actual[kMaxFixed64];
            const std::size_t n =
                formatGeneral(actual, sizeof(actual), v, digits);
            EXPECT_EQ(std::string(actual, n), expected)
                << "v=" << v << " digits=" << digits;
        }
    }
}

TEST(FastFormat, NonFiniteSpellingsArePinned)
{
    const double inf = std::numeric_limits<double>::infinity();
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_EQ(toFixedString(inf, 4), "inf");
    EXPECT_EQ(toFixedString(-inf, 4), "-inf");
    EXPECT_EQ(toFixedString(nan, 4), "nan");
    EXPECT_EQ(toFixedString(-std::fabs(nan), 4), "-nan");
}

TEST(FastFormat, TruncatesAtCapacityWithoutOverflow)
{
    char tiny[4];
    const std::size_t n = formatFixed(tiny, sizeof(tiny),
                                      123456.789, 4);
    EXPECT_LE(n, sizeof(tiny));
}

TEST(FastFormat, CsvRowMatchesOstreamPrecision)
{
    // CsvWriter::row switched from ostringstream to the fast
    // formatter; the emitted text must not change.
    const std::vector<double> values = {0.0,   1.5,      123.456789,
                                        1e7,   -2.5e-8,  42.0};
    std::ostringstream fast;
    CsvWriter csv(fast);
    csv.row(values);

    std::ostringstream legacy;
    legacy << std::setprecision(6);
    bool first = true;
    for (double v : values) {
        if (!first)
            legacy << ',';
        legacy << v;
        first = false;
    }
    legacy << '\n';
    EXPECT_EQ(fast.str(), legacy.str());
    EXPECT_EQ(csv.rowCount(), 1u);
}

// ----- SPSC POD ring ---------------------------------------------------

struct SeqRecord
{
    std::uint64_t seq;
    double payload;
};

TEST(SpscPodRing, FifoOrderSingleThread)
{
    transport::SpscPodRing<SeqRecord> ring(64);
    for (std::uint64_t i = 0; i < 50; ++i)
        ASSERT_TRUE(ring.push({i, i * 0.5}));
    EXPECT_EQ(ring.size(), 50u);
    SeqRecord out[64];
    const std::size_t n = ring.drain(out, 64, 0.0);
    ASSERT_EQ(n, 50u);
    for (std::uint64_t i = 0; i < n; ++i) {
        EXPECT_EQ(out[i].seq, i);
        EXPECT_DOUBLE_EQ(out[i].payload, i * 0.5);
    }
}

TEST(SpscPodRing, BlockModeIsLosslessAcrossThreads)
{
    transport::SpscPodRing<SeqRecord> ring(16);
    constexpr std::uint64_t kCount = 100000;
    std::thread producer([&] {
        for (std::uint64_t i = 0; i < kCount; ++i)
            ASSERT_TRUE(ring.push({i, 0.0}));
        ring.close();
    });
    std::uint64_t expect = 0;
    SeqRecord out[32];
    for (;;) {
        const std::size_t n = ring.drain(out, 32, 1.0);
        if (n == 0) {
            if (ring.finished())
                break;
            continue;
        }
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(out[i].seq, expect++);
    }
    producer.join();
    EXPECT_EQ(expect, kCount);
    EXPECT_EQ(ring.dropped(), 0u);
}

TEST(SpscPodRing, DropOldestKeepsNewestRecords)
{
    transport::SpscPodRing<SeqRecord> ring(
        16, transport::RingOverflow::DropOldest);
    const std::size_t cap = ring.capacity();
    const std::uint64_t total = cap + 40;
    // No consumer: the first 40 records must be reclaimed.
    for (std::uint64_t i = 0; i < total; ++i)
        ASSERT_TRUE(ring.push({i, 0.0}));
    EXPECT_EQ(ring.dropped(), 40u);
    EXPECT_EQ(ring.size(), cap);
    std::vector<SeqRecord> out(cap);
    const std::size_t n = ring.drain(out.data(), cap, 0.0);
    ASSERT_EQ(n, cap);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(out[i].seq, 40 + i);
}

TEST(SpscPodRing, DropOldestThreadedStressNeverTearsOrReorders)
{
    // The hard case in the ring: DropOldest reclaims the oldest slot
    // with a CAS on head_ while the consumer's drain commits its own
    // head_ advance and must discard any prefix the producer already
    // overwrote. Run producer and consumer flat out on a tiny ring
    // and check three invariants on everything drained:
    //   - records are never torn (payload redundantly encodes seq),
    //   - sequence numbers strictly increase (no duplication or
    //     reordering from a mis-committed drain),
    //   - drained + dropped accounts for every push.
    // Build with -DPS3_SANITIZE=thread (`make tsan-check`) to verify
    // the memory-ordering contract, not just the outcome.
    transport::SpscPodRing<SeqRecord> ring(
        16, transport::RingOverflow::DropOldest);
    constexpr std::uint64_t kCount = 200000;

    std::thread producer([&] {
        for (std::uint64_t i = 0; i < kCount; ++i)
            ASSERT_TRUE(ring.push({i, i * 3.0 + 1.0}));
        ring.close();
    });

    std::uint64_t drained = 0;
    std::uint64_t last_seq = 0;
    bool have_last = false;
    SeqRecord out[32];
    for (;;) {
        const std::size_t n = ring.drain(out, 32, 1.0);
        if (n == 0) {
            if (ring.finished())
                break;
            continue;
        }
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_DOUBLE_EQ(out[i].payload,
                             out[i].seq * 3.0 + 1.0)
                << "torn record at seq " << out[i].seq;
            if (have_last)
                ASSERT_GT(out[i].seq, last_seq);
            last_seq = out[i].seq;
            have_last = true;
        }
        drained += n;
    }
    producer.join();

    EXPECT_EQ(drained + ring.dropped(), kCount);
    EXPECT_GT(drained, 0u);
}

TEST(SpscPodRing, CloseWakesAndFinishes)
{
    transport::SpscPodRing<SeqRecord> ring(16);
    ASSERT_TRUE(ring.push({7, 0.0}));
    ring.close();
    EXPECT_FALSE(ring.push({8, 0.0}));
    EXPECT_TRUE(ring.closed());
    EXPECT_FALSE(ring.finished()); // one record still buffered
    SeqRecord out[4];
    EXPECT_EQ(ring.drain(out, 4, 0.0), 1u);
    EXPECT_EQ(out[0].seq, 7u);
    EXPECT_TRUE(ring.finished());
    EXPECT_EQ(ring.drain(out, 4, 0.0), 0u);
}

// ----- DumpWriter round trips ------------------------------------------

constexpr const char *kHeader =
    "# PowerSensor3 continuous dump\n"
    "# sample_rate_hz 20000\n"
    "# columns: S time_s V0 I0 P0 total_W\n";

DumpRecord
makeRecord(double t, std::uint8_t mask)
{
    DumpRecord r;
    r.time = t;
    r.presentMask = mask;
    for (unsigned pair = 0; pair < kMaxPairs; ++pair) {
        r.voltage[pair] = 12.0 + 0.125 * pair + t;
        r.current[pair] = 3.0 - 0.0625 * pair + 2.0 * t;
    }
    return r;
}

TEST(DumpWriterRoundTrip, TextWithMarkersAndAllMasks)
{
    const std::string path = uniquePath("text", ".txt");
    std::vector<DumpRecord> pushed;
    {
        DumpWriter writer(path, kHeader,
                          {.format = DumpFormat::Text});
        ASSERT_EQ(writer.format(), DumpFormat::Text);
        // Every mask from no pairs to all kMaxPairs pairs, with a
        // marker every 7th record.
        for (unsigned i = 0; i < 200; ++i) {
            DumpRecord r = makeRecord(
                i * 50e-6,
                static_cast<std::uint8_t>(i % (1u << kMaxPairs)));
            if (i % 7 == 0) {
                r.marker = true;
                r.markerChar =
                    static_cast<char>('A' + (i / 7) % 26);
            }
            pushed.push_back(r);
            writer.push(r);
        }
    }
    const auto file = DumpFile::load(path);
    ASSERT_EQ(file.samples().size(), pushed.size());
    EXPECT_EQ(file.markers().size(), (pushed.size() + 6) / 7);
    EXPECT_NEAR(file.sampleRateHz(), 20000.0, 1e-9);
    EXPECT_EQ(file.header().size(), 3u);
    for (std::size_t i = 0; i < pushed.size(); ++i) {
        const auto &in = pushed[i];
        const auto &out = file.samples()[i];
        ASSERT_NEAR(out.time, in.time, 5e-7) << i;
        std::size_t slot = 0;
        double total = 0.0;
        for (unsigned pair = 0; pair < kMaxPairs; ++pair) {
            if (!(in.presentMask & (1u << pair)))
                continue;
            ASSERT_LT(slot, out.voltage.size());
            EXPECT_NEAR(out.voltage[slot], in.voltage[pair], 5e-5);
            EXPECT_NEAR(out.current[slot], in.current[pair], 5e-5);
            EXPECT_NEAR(out.power[slot],
                        in.voltage[pair] * in.current[pair], 1e-4);
            total += in.voltage[pair] * in.current[pair];
            ++slot;
        }
        EXPECT_EQ(out.voltage.size(), slot);
        EXPECT_NEAR(out.totalPower, total, 1e-4);
    }
    std::filesystem::remove(path);
}

TEST(DumpWriterRoundTrip, BinaryIsLossless)
{
    const std::string path = uniquePath("binary", ".ps3b");
    std::vector<DumpRecord> pushed;
    {
        DumpWriter writer(path, kHeader, {});
        ASSERT_EQ(writer.format(), DumpFormat::Binary); // from name
        for (unsigned i = 0; i < 500; ++i) {
            DumpRecord r = makeRecord(
                i * 50e-6 + 1.0 / 3.0,
                static_cast<std::uint8_t>(
                    1u + i % ((1u << kMaxPairs) - 1u)));
            if (i % 11 == 0) {
                r.marker = true;
                r.markerChar = 'Z';
            }
            pushed.push_back(r);
            writer.push(r);
        }
    }
    const auto file = DumpFile::load(path);
    ASSERT_EQ(file.samples().size(), pushed.size());
    EXPECT_NEAR(file.sampleRateHz(), 20000.0, 1e-9);
    ASSERT_EQ(file.header().size(), 3u);
    EXPECT_EQ(file.header()[0], "# PowerSensor3 continuous dump");
    for (std::size_t i = 0; i < pushed.size(); ++i) {
        const auto &in = pushed[i];
        const auto &out = file.samples()[i];
        // Binary keeps full f64 precision: exact equality.
        ASSERT_EQ(out.time, in.time) << i;
        std::size_t slot = 0;
        double total = 0.0;
        for (unsigned pair = 0; pair < kMaxPairs; ++pair) {
            if (!(in.presentMask & (1u << pair)))
                continue;
            ASSERT_EQ(out.voltage[slot], in.voltage[pair]);
            ASSERT_EQ(out.current[slot], in.current[pair]);
            ASSERT_EQ(out.power[slot],
                      in.current[pair] * in.voltage[pair]);
            total += in.current[pair] * in.voltage[pair];
            ++slot;
        }
        ASSERT_EQ(out.totalPower, total);
    }
    const auto &markers = file.markers();
    ASSERT_EQ(markers.size(), (pushed.size() + 10) / 11);
    for (const auto &marker : markers)
        EXPECT_EQ(marker.marker, 'Z');
    std::filesystem::remove(path);
}

TEST(DumpWriterRoundTrip, TextAndBinaryAgree)
{
    const std::string text_path = uniquePath("agree", ".txt");
    const std::string bin_path = uniquePath("agree", ".ps3b");
    {
        DumpWriter text(text_path, kHeader,
                        {.format = DumpFormat::Text});
        DumpWriter bin(bin_path, kHeader, {});
        for (unsigned i = 0; i < 100; ++i) {
            const DumpRecord r = makeRecord(i * 50e-6, 0x3);
            text.push(r);
            bin.push(r);
        }
    }
    const auto text_file = DumpFile::load(text_path);
    const auto bin_file = DumpFile::load(bin_path);
    ASSERT_EQ(text_file.samples().size(),
              bin_file.samples().size());
    EXPECT_EQ(text_file.header(), bin_file.header());
    for (std::size_t i = 0; i < text_file.samples().size(); ++i) {
        const auto &t = text_file.samples()[i];
        const auto &b = bin_file.samples()[i];
        EXPECT_NEAR(t.time, b.time, 5e-7);
        ASSERT_EQ(t.voltage.size(), b.voltage.size());
        for (std::size_t p = 0; p < t.voltage.size(); ++p) {
            EXPECT_NEAR(t.voltage[p], b.voltage[p], 5e-5);
            EXPECT_NEAR(t.current[p], b.current[p], 5e-5);
        }
        EXPECT_NEAR(t.totalPower, b.totalPower, 1e-4);
    }
    // Binary should be the (strictly) smaller encoding here.
    EXPECT_LT(std::filesystem::file_size(bin_path),
              std::filesystem::file_size(text_path));
    std::filesystem::remove(text_path);
    std::filesystem::remove(bin_path);
}

TEST(DumpWriterRoundTrip, NonFiniteValuesSurviveText)
{
    const std::string path = uniquePath("nonfinite", ".txt");
    const double inf = std::numeric_limits<double>::infinity();
    const double nan = std::numeric_limits<double>::quiet_NaN();
    {
        DumpWriter writer(path, kHeader,
                          {.format = DumpFormat::Text});
        DumpRecord r = makeRecord(0.5, 0x1);
        r.voltage[0] = inf;
        r.current[0] = nan;
        writer.push(r);
    }
    const auto file = DumpFile::load(path);
    ASSERT_EQ(file.samples().size(), 1u);
    EXPECT_TRUE(std::isinf(file.samples()[0].voltage[0]));
    EXPECT_TRUE(std::isnan(file.samples()[0].current[0]));
    EXPECT_TRUE(std::isnan(file.samples()[0].totalPower));
    std::filesystem::remove(path);
}

TEST(DumpWriterShutdown, CloseDrainsEveryQueuedRecord)
{
    const std::string path = uniquePath("drain", ".ps3b");
    constexpr std::uint64_t kCount = 50000;
    {
        DumpWriter writer(path, kHeader, {});
        for (std::uint64_t i = 0; i < kCount; ++i)
            writer.push(makeRecord(i * 50e-6, 0x1));
        writer.close();
        EXPECT_EQ(writer.recordsWritten(), kCount);
        EXPECT_EQ(writer.recordsDropped(), 0u);
        EXPECT_EQ(writer.bytesWritten(),
                  std::filesystem::file_size(path));
    }
    const auto file = DumpFile::load(path);
    EXPECT_EQ(file.samples().size(), kCount);
    std::filesystem::remove(path);
}

TEST(DumpWriterShutdown, DropOldestAccountsForEveryRecord)
{
    const std::string path = uniquePath("drop", ".txt");
    constexpr std::uint64_t kCount = 200000;
    std::uint64_t written = 0;
    std::uint64_t dropped = 0;
    {
        DumpWriter writer(path, kHeader,
                          {.format = DumpFormat::Text,
                           .overflow = DumpOverflow::DropOldest,
                           .ringCapacity = 64});
        for (std::uint64_t i = 0; i < kCount; ++i)
            writer.push(makeRecord(i * 50e-6, 0x1));
        writer.close();
        written = writer.recordsWritten();
        dropped = writer.recordsDropped();
    }
    // Every pushed record is either written or counted dropped.
    EXPECT_EQ(written + dropped, kCount);
    const auto file = DumpFile::load(path);
    EXPECT_EQ(file.samples().size(), written);
    std::filesystem::remove(path);
}

// ----- binary format errors --------------------------------------------

TEST(DumpBinaryErrors, TruncatedAndBadVersionThrow)
{
    const std::string path = uniquePath("badbin", ".ps3b");
    {
        std::ofstream out(path, std::ios::binary);
        out << "PS3B"; // magic only: truncated header
    }
    EXPECT_THROW(DumpFile::load(path), UsageError);
    {
        std::ofstream out(path, std::ios::binary);
        const char header[8] = {'P', 'S', '3', 'B', 9, 0, 0, 0};
        out.write(header, sizeof(header)); // unsupported version 9
    }
    EXPECT_THROW(DumpFile::load(path), UsageError);
    {
        std::ofstream out(path, std::ios::binary);
        const char header[8] = {'P', 'S', '3', 'B', 2, 0, 0, 0};
        out.write(header, sizeof(header));
        out << 'S'; // record cut short
    }
    EXPECT_THROW(DumpFile::load(path), UsageError);
    std::filesystem::remove(path);
}

TEST(DumpBinaryErrors, ResolveFormatRules)
{
    EXPECT_EQ(DumpWriter::resolveFormat("x.ps3b", DumpFormat::Auto),
              DumpFormat::Binary);
    EXPECT_EQ(DumpWriter::resolveFormat("x.txt", DumpFormat::Auto),
              DumpFormat::Text);
    EXPECT_EQ(DumpWriter::resolveFormat("x.txt", DumpFormat::Binary),
              DumpFormat::Binary);
    EXPECT_EQ(DumpWriter::resolveFormat("x.ps3b", DumpFormat::Text),
              DumpFormat::Text);
}

// ----- PowerSensor-level binary dump -----------------------------------

TEST(PowerSensorBinaryDump, RoundTripsThroughLabBench)
{
    const std::string path = uniquePath("sensor", ".ps3b");
    {
        auto rig = rigs::labBench(analog::modules::slot12V10A(),
                                  12.0, 5.0);
        auto sensor = rig.connect();
        sensor->dump(path);
        sensor->mark('B');
        sensor->waitForSamples(20000);
        sensor->mark('E');
        sensor->waitForSamples(4000);
        sensor->dump("");
        EXPECT_FALSE(sensor->dumping());
    }
    const auto file = DumpFile::load(path);
    EXPECT_GT(file.samples().size(), 20000u);
    ASSERT_EQ(file.markers().size(), 2u);
    EXPECT_EQ(file.markers()[0].marker, 'B');
    EXPECT_EQ(file.markers()[1].marker, 'E');
    EXPECT_NEAR(file.sampleRateHz(), 20e3, 1.0);
    for (std::size_t i = 0; i < file.samples().size(); i += 500) {
        const auto &s = file.samples()[i];
        ASSERT_EQ(s.power.size(), 1u);
        // Binary keeps full precision: exact identity.
        EXPECT_EQ(s.power[0], s.voltage[0] * s.current[0]);
    }
    const double joules = file.energyBetweenMarkers('B', 'E');
    EXPECT_GT(joules, 0.0);
    std::filesystem::remove(path);
}

TEST(PowerSensorBinaryDump, DropOldestPolicyIsAccepted)
{
    const std::string path = uniquePath("sensordrop", ".txt");
    {
        auto rig = rigs::labBench(analog::modules::slot12V10A(),
                                  12.0, 5.0);
        auto sensor = rig.connect();
        sensor->dump(path, DumpFormat::Auto,
                     DumpOverflow::DropOldest);
        EXPECT_TRUE(sensor->dumping());
        sensor->waitForSamples(2000);
        sensor->dump("");
    }
    const auto file = DumpFile::load(path);
    EXPECT_GT(file.samples().size(), 1000u);
    std::filesystem::remove(path);
}

} // namespace
} // namespace ps3::host
