/**
 * @file
 * Unit and integration tests for the PowerSensor host class: state
 * arithmetic, dump files, configuration round-trips, calibration,
 * fault tolerance and disconnect handling.
 */

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/errors.hpp"
#include "firmware/wire_stub.hpp"
#include "host/calibrator.hpp"
#include "host/sim_setup.hpp"
#include "transport/fault_injection.hpp"
#include "transport/pipe_device.hpp"

namespace ps3::host {
namespace {

TEST(StateMath, JoulesWattsSeconds)
{
    State a, b;
    a.timeAtRead = 1.0;
    b.timeAtRead = 3.0;
    a.consumedEnergy = {10.0, 0.0, 5.0, 0.0};
    b.consumedEnergy = {30.0, 0.0, 9.0, 0.0};
    b.present = {true, false, true, false};
    a.present = b.present;

    EXPECT_DOUBLE_EQ(seconds(a, b), 2.0);
    EXPECT_DOUBLE_EQ(Joules(a, b), 24.0);
    EXPECT_DOUBLE_EQ(Joules(a, b, 0), 20.0);
    EXPECT_DOUBLE_EQ(Joules(a, b, 2), 4.0);
    EXPECT_DOUBLE_EQ(Watts(a, b), 12.0);
    EXPECT_DOUBLE_EQ(Watts(a, b, 2), 2.0);
    EXPECT_THROW(Joules(a, b, 7), UsageError);
    EXPECT_THROW(Watts(b, a), UsageError); // non-positive interval
}

TEST(StateMath, PowerHelpers)
{
    State s;
    s.present = {true, true, false, false};
    s.current = {2.0, 1.0, 9.0, 0.0};
    s.voltage = {12.0, 3.3, 9.0, 0.0};
    EXPECT_DOUBLE_EQ(s.power(0), 24.0);
    EXPECT_NEAR(s.totalPower(), 24.0 + 3.3, 1e-12);

    Sample sample;
    sample.present = s.present;
    sample.current = s.current;
    sample.voltage = s.voltage;
    EXPECT_NEAR(sample.totalPower(), 27.3, 1e-12);
}

TEST(PowerSensorTest, ReportsPairMetadata)
{
    auto rig = rigs::labBench(analog::modules::slot3V3_10A(), 3.3,
                              2.0);
    auto sensor = rig.connect();
    EXPECT_EQ(sensor->activePairs(), 1u);
    EXPECT_TRUE(sensor->pairPresent(0));
    EXPECT_FALSE(sensor->pairPresent(1));
    EXPECT_EQ(sensor->pairName(0), "3.3V-10A");
    EXPECT_THROW(sensor->pairPresent(9), UsageError);
    EXPECT_THROW(sensor->pairName(9), UsageError);
}

TEST(PowerSensorTest, EnergyIntegrationMatchesAnalyticValue)
{
    auto rig = rigs::labBench(analog::modules::slot12V10A(), 12.0,
                              4.0);
    auto sensor = rig.connect();
    const auto first = sensor->read();
    ASSERT_TRUE(sensor->waitForSamples(20000));
    const auto second = sensor->read();
    const double dt = seconds(first, second);
    // 4 A at ~11.96 V, within the sensor's budget.
    EXPECT_NEAR(Joules(first, second), 4.0 * 11.96 * dt,
                1.5 * dt);
}

TEST(PowerSensorTest, DumpFileFormat)
{
    const std::string path = "/tmp/ps3_test_dump.txt";
    std::filesystem::remove(path);
    {
        auto rig = rigs::labBench(analog::modules::slot12V10A(),
                                  12.0, 2.0);
        auto sensor = rig.connect();
        sensor->dump(path);
        EXPECT_TRUE(sensor->dumping());
        sensor->mark('k');
        sensor->waitForSamples(4000);
        sensor->dump("");
        EXPECT_FALSE(sensor->dumping());
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    unsigned s_lines = 0, m_lines = 0, comments = 0;
    double last_time = -1.0;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        if (line[0] == '#') {
            ++comments;
        } else if (line[0] == 'S') {
            ++s_lines;
            double t, v, i, p, total;
            ASSERT_EQ(std::sscanf(line.c_str(),
                                  "S %lf %lf %lf %lf %lf", &t, &v,
                                  &i, &p, &total),
                      5)
                << line;
            EXPECT_GT(t, last_time);
            last_time = t;
            EXPECT_NEAR(p, v * i, 1e-3);
            EXPECT_NEAR(total, p, 1e-3);
        } else if (line[0] == 'M') {
            ++m_lines;
            EXPECT_EQ(line[2], 'k');
        }
    }
    EXPECT_GE(comments, 3u);
    EXPECT_GT(s_lines, 3000u);
    EXPECT_EQ(m_lines, 1u);
    std::filesystem::remove(path);
}

TEST(PowerSensorTest, DumpToUnwritablePathThrows)
{
    auto rig = rigs::labBench(analog::modules::slot12V10A(), 12.0,
                              1.0);
    auto sensor = rig.connect();
    EXPECT_THROW(sensor->dump("/nonexistent-dir/x.txt"), UsageError);
}

TEST(PowerSensorTest, WriteConfigRoundTripsAndDisablesPair)
{
    auto rig = rigs::labBench(analog::modules::slot12V10A(), 12.0,
                              3.0);
    auto sensor = rig.connect();
    ASSERT_TRUE(sensor->waitForSamples(100));

    auto config = sensor->config();
    config[0].name = "tweaked";
    config[1].name = "tweaked";
    sensor->writeConfig(config);
    EXPECT_EQ(sensor->pairName(0), "tweaked");
    // The firmware's EEPROM saw the write too.
    EXPECT_EQ(rig.firmware->eeprom().loadChannel(0).name, "tweaked");

    // Disabling both channels removes the pair from the stream.
    config[0].inUse = false;
    config[1].inUse = false;
    sensor->writeConfig(config);
    // Once disabled, no channels stream: state time freezes.
    const auto s1 = sensor->read();
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    const auto s2 = sensor->read();
    EXPECT_EQ(s1.sampleCount, s2.sampleCount);
    EXPECT_EQ(sensor->activePairs(), 0u);
}

TEST(PowerSensorTest, ListenerLifecycle)
{
    auto rig = rigs::labBench(analog::modules::slot12V10A(), 12.0,
                              1.0);
    auto sensor = rig.connect();
    EXPECT_THROW(sensor->addSampleListener(nullptr), UsageError);

    unsigned count_a = 0;
    const auto token = sensor->addSampleListener(
        [&](const Sample &) { ++count_a; });
    ASSERT_TRUE(sensor->waitForSamples(100));
    sensor->removeSampleListener(token);
    const unsigned frozen = count_a;
    ASSERT_TRUE(sensor->waitForSamples(100));
    EXPECT_EQ(count_a, frozen);
}

TEST(PowerSensorTest, UnexpectedMarkerGetsPlaceholderChar)
{
    // Inject a marker at the firmware level without going through
    // PowerSensor::mark(), so the host has no queued character.
    auto rig = rigs::labBench(analog::modules::slot12V10A(), 12.0,
                              1.0);
    auto sensor = rig.connect();
    char seen = '\0';
    const auto token = sensor->addSampleListener(
        [&](const Sample &s) {
            if (s.marker)
                seen = s.markerChar;
        });
    const std::uint8_t cmd[] = {'M', 'q'};
    rig.firmware->hostWrite(cmd, 2);
    ASSERT_TRUE(sensor->waitForSamples(4000));
    sensor->removeSampleListener(token);
    EXPECT_EQ(seen, '?');
}

TEST(PowerSensorTest, SurvivesFaultyLinkWithBoundedLoss)
{
    auto rig = rigs::labBench(analog::modules::slot12V10A(), 12.0,
                              5.0);
    transport::FaultProfile profile;
    profile.corruptProbability = 0.001;
    profile.dropProbability = 0.0005;
    transport::FaultInjectingDevice faulty(*rig.port, profile, 3);
    PowerSensor sensor(faulty);

    ASSERT_TRUE(sensor.waitForSamples(40000));
    const auto state = sensor.read();
    // Resync events happened but the data kept flowing and stayed
    // credible.
    EXPECT_GT(sensor.resyncByteCount(), 0u);
    EXPECT_GT(faulty.faultCount(), 0u);
    EXPECT_NEAR(state.voltage[0], 11.95, 0.4);
    EXPECT_NEAR(state.current[0], 5.0, 0.5);
}

TEST(PowerSensorTest, DeviceDisappearanceIsReported)
{
    auto rig = rigs::labBench(analog::modules::slot12V10A(), 12.0,
                              1.0);
    auto sensor = rig.connect();
    ASSERT_TRUE(sensor->waitForSamples(100));
    rig.port->disconnect();
    EXPECT_FALSE(sensor->waitUntil(1e9));
    EXPECT_TRUE(sensor->deviceGone());
    EXPECT_FALSE(sensor->waitForSamples(100000));
}

TEST(PowerSensorTest, ConnectingToDeadPortThrows)
{
    auto rig = rigs::labBench(analog::modules::slot12V10A(), 12.0,
                              1.0);
    rig.port->disconnect();
    EXPECT_THROW(PowerSensor sensor(*rig.port), DeviceError);
}

TEST(CalibratorTest, RemovesOffsetAndGainErrors)
{
    // Build an *uncalibrated* rig with significant spread; the
    // guided procedure must recover accuracy.
    rigs::RigOptions options;
    options.seed = 21;
    options.factoryCalibrated = false;
    auto rig = rigs::labBench(analog::modules::slot12V10A(), 12.0,
                              /*load_amps=*/0.0, options);
    auto sensor = rig.connect();

    Calibrator calibrator(*sensor);
    const auto result =
        calibrator.calibratePair(0, 12.0, /*samples=*/20000);
    // The injected spread is visible before calibration...
    EXPECT_GT(std::abs(result.offsetAmpsBefore), 0.01);
    calibrator.apply();

    // ...and reduced afterwards: re-measure the offset.
    Calibrator verify(*sensor);
    const auto after = verify.calibratePair(0, 12.0, 20000);
    EXPECT_LT(std::abs(after.offsetAmpsBefore), 0.01);
    EXPECT_LT(std::abs(after.voltageGainErrorBefore), 0.002);

    // Loaded accuracy after calibration: 8 A x ~12 V.
    rig.load->setAmps(8.0);
    ASSERT_TRUE(sensor->waitForSamples(4096));
    const auto s1 = sensor->read();
    ASSERT_TRUE(sensor->waitForSamples(20000));
    const auto s2 = sensor->read();
    EXPECT_NEAR(Watts(s1, s2), 8.0 * 11.92, 1.5);
}

TEST(CalibratorTest, ValidatesArguments)
{
    auto rig = rigs::labBench(analog::modules::slot12V10A(), 12.0,
                              0.0);
    auto sensor = rig.connect();
    Calibrator calibrator(*sensor);
    EXPECT_THROW(calibrator.calibratePair(9, 12.0), UsageError);
    EXPECT_THROW(calibrator.calibratePair(1, 12.0), UsageError);
    EXPECT_THROW(calibrator.calibratePair(0, -5.0), UsageError);
}

TEST(SimSetupTest, RigFactoriesProduceWorkingSensors)
{
    {
        auto rig = rigs::gpuRig(dut::GpuSpec::rtx4000Ada());
        auto sensor = rig.connect();
        EXPECT_EQ(sensor->activePairs(), 3u);
        ASSERT_TRUE(sensor->waitForSamples(100));
        EXPECT_NEAR(sensor->read().totalPower(),
                    dut::GpuSpec::rtx4000Ada().idlePower, 3.0);
    }
    {
        auto rig = rigs::socRig(dut::GpuSpec::jetsonAgxOrinModule());
        auto sensor = rig.connect();
        EXPECT_EQ(sensor->activePairs(), 1u);
        ASSERT_TRUE(sensor->waitForSamples(100));
        EXPECT_NEAR(sensor->read().totalPower(), 9.0 + 4.8, 3.0);
    }
    {
        auto rig = rigs::traceRig({{0.0, 5.0}, {10.0, 5.0}},
                                  dut::TraceDut::m2AdapterRails());
        auto sensor = rig.connect();
        EXPECT_EQ(sensor->activePairs(), 2u);
        // Average over an interval: a single 3.3 V sample carries
        // ~0.2 W of Hall noise.
        const auto s1 = sensor->read();
        ASSERT_TRUE(sensor->waitForSamples(8000));
        const auto s2 = sensor->read();
        EXPECT_NEAR(Watts(s1, s2), 5.0, 0.3);
    }
}

TEST(PowerSensorTest, DestructorReturnsPromptlyWithIdleStream)
{
    // With no data flowing the reader thread parks inside a blocking
    // read. The destructor must interrupt that wait instead of riding
    // out the 50 ms read timeout (the device's interruptReads() hook).
    transport::PipeDevice pipe(
        transport::PipeDevice::Backend::LockFreeRing, 1u << 12);
    firmware::DeviceConfig config;
    firmware::WireStub stub(pipe, config);

    auto sensor = std::make_unique<PowerSensor>(pipe);
    EXPECT_TRUE(stub.streaming());

    // Let the reader reach its steady-state blocking read.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));

    const auto start = std::chrono::steady_clock::now();
    sensor.reset();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now()
                                      - start)
            .count();
    EXPECT_LT(elapsed, 0.040);
    EXPECT_FALSE(stub.streaming()); // StopStream reached the device
}

TEST(PowerSensorTest, ConcurrentMarkersFromManyThreadsAllResolve)
{
    // mark() is documented lock-free and callable from any thread,
    // including sample listeners on the reader thread itself. Spin
    // four threads marking concurrently and check every accepted
    // marker comes back flagged on a sample exactly once.
    auto rig = rigs::labBench(analog::modules::slot12V10A(), 12.0,
                              2.0);
    auto sensor = rig.connect();

    constexpr int kThreads = 4;
    constexpr int kPerThread = 32; // stays under the 256-slot queue
    std::atomic<int> seen{0};
    const auto token =
        sensor->addSampleListener([&](const Sample &sample) {
            if (sample.marker)
                seen.fetch_add(1, std::memory_order_relaxed);
        });

    std::vector<std::thread> markers;
    for (int t = 0; t < kThreads; ++t) {
        markers.emplace_back([&sensor] {
            for (int i = 0; i < kPerThread; ++i) {
                sensor->mark('a' + (i % 26));
                // Yield so markers spread across frame sets instead
                // of racing the queue depth.
                std::this_thread::yield();
            }
        });
    }
    for (auto &thread : markers)
        thread.join();

    // One marker resolves per frame set, so give the stream time to
    // work through the backlog.
    const auto deadline = std::chrono::steady_clock::now()
                          + std::chrono::seconds(20);
    while (seen.load() < kThreads * kPerThread
           && std::chrono::steady_clock::now() < deadline)
        ASSERT_TRUE(sensor->waitForSamples(256));
    sensor->removeSampleListener(token);
    EXPECT_EQ(seen.load(), kThreads * kPerThread);
}

} // namespace
} // namespace ps3::host
