/**
 * @file
 * PS3N v2 codec tests (net/wire_v2.hpp): round-trips for every
 * frame and command, plus hostile-input coverage — truncated
 * hellos, implausible sensor-list counts, junk subscribe bodies —
 * asserting decoders throw (or return nullopt) instead of reading
 * out of bounds. Server-side protocol behaviour (stream-id
 * collisions, negotiation fallback) lives in test_fleet_server.
 */

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "net/wire.hpp"
#include "net/wire_v2.hpp"

namespace ps3::net {
namespace {

TEST(V2Hello, ClientHelloAnnouncesVersion2)
{
    const auto hello = encodeClientHelloV2();
    ASSERT_EQ(hello.size(), kClientHelloSize);
    const auto version =
        peekHelloVersion(hello.data(), hello.size());
    ASSERT_TRUE(version.has_value());
    EXPECT_EQ(*version, kProtocolVersion2);
    // Reserved bytes must be zero: v1 would read them as
    // overflow/minor/tier.
    EXPECT_EQ(hello[5], 0);
    EXPECT_EQ(hello[6], 0);
    EXPECT_EQ(hello[7], 0);
}

TEST(V2Hello, V1ServerRejectsV2HelloAsVersionMismatch)
{
    // What a pre-fleet server does with a v2 hello: the v1 decoder
    // must reject it (version mismatch), never misparse it.
    const auto hello = encodeClientHelloV2();
    HelloStatus reject = HelloStatus::Ok;
    const auto decoded =
        ClientHello::decode(hello.data(), hello.size(), reject);
    EXPECT_FALSE(decoded.has_value());
    EXPECT_EQ(reject, HelloStatus::VersionMismatch);
}

TEST(V2Hello, PeekRejectsBadMagicAndShortInput)
{
    auto hello = encodeClientHelloV2();
    EXPECT_FALSE(
        peekHelloVersion(hello.data(), hello.size() - 1)
            .has_value());
    hello[0] = 'X';
    EXPECT_FALSE(
        peekHelloVersion(hello.data(), hello.size()).has_value());
}

TEST(V2Hello, V1HellosStillPeekTheirVersion)
{
    // The server's dispatch peeks the version byte of any
    // well-formed hello; every v1 minor must land on version 1.
    for (std::uint8_t minor : {0, 1, 2}) {
        ClientHello v1;
        v1.minor = minor;
        const auto bytes = v1.encode();
        const auto version =
            peekHelloVersion(bytes.data(), bytes.size());
        ASSERT_TRUE(version.has_value());
        EXPECT_EQ(*version, 1);
    }
}

TEST(V2Hello, ServerHelloRoundTrip)
{
    const auto ok = encodeServerHelloV2(HelloStatus::Ok, 257);
    HelloStatus status = HelloStatus::BadHello;
    const std::size_t payload_len = decodeServerHelloV2Prefix(
        ok.data(), kServerHelloPrefixSize, status);
    EXPECT_EQ(status, HelloStatus::Ok);
    ASSERT_EQ(payload_len, 2u);
    ASSERT_EQ(ok.size(), kServerHelloPrefixSize + payload_len);
    EXPECT_EQ(decodeServerHelloV2Payload(
                  ok.data() + kServerHelloPrefixSize, payload_len),
              257);
}

TEST(V2Hello, ServerHelloNackHasEmptyPayload)
{
    const auto full =
        encodeServerHelloV2(HelloStatus::ServerFull, 99);
    HelloStatus status = HelloStatus::Ok;
    EXPECT_EQ(decodeServerHelloV2Prefix(
                  full.data(), kServerHelloPrefixSize, status),
              0u);
    EXPECT_EQ(status, HelloStatus::ServerFull);
}

TEST(V2Hello, V1ServerHelloThrowsPreFleetGuidance)
{
    // A v1 daemon answers a v2 hello with its own v1-versioned
    // ServerHello; the v2 client must throw an error naming the
    // version gap, which is the fallback signal.
    ServerHello v1;
    v1.status = HelloStatus::VersionMismatch;
    const auto bytes = v1.encode();
    HelloStatus status = HelloStatus::Ok;
    try {
        decodeServerHelloV2Prefix(bytes.data(),
                                  kServerHelloPrefixSize, status);
        FAIL() << "v1 server hello must not parse as v2";
    } catch (const DeviceError &e) {
        EXPECT_NE(std::string(e.what()).find("pre-fleet"),
                  std::string::npos);
    }
}

TEST(V2Hello, TruncatedServerHelloThrows)
{
    const auto ok = encodeServerHelloV2(HelloStatus::Ok, 1);
    HelloStatus status = HelloStatus::Ok;
    EXPECT_THROW(decodeServerHelloV2Prefix(ok.data(), 7, status),
                 DeviceError);
    EXPECT_THROW(decodeServerHelloV2Payload(ok.data(), 1),
                 DeviceError);
}

TEST(V2Commands, SizesAreSelfFraming)
{
    EXPECT_EQ(commandSize(kOpListSensors), kOpListSensorsSize);
    EXPECT_EQ(commandSize(kOpSubscribe), kOpSubscribeSize);
    EXPECT_EQ(commandSize(kOpUnsubscribe), kOpUnsubscribeSize);
    EXPECT_EQ(commandSize(kOpCredit), kOpCreditSize);
    EXPECT_EQ(commandSize(kOpMarker), kOpMarkerSize);
    EXPECT_EQ(commandSize('Z'), 0u); // unknown op: kick signal
    EXPECT_EQ(commandSize(0), 0u);
}

TEST(V2Commands, EncodersMatchTheirDeclaredSizes)
{
    std::vector<std::uint8_t> out;
    encodeListSensors(out);
    EXPECT_EQ(out.size(), kOpListSensorsSize);
    out.clear();
    encodeUnsubscribe(out, 7);
    EXPECT_EQ(out.size(), kOpUnsubscribeSize);
    out.clear();
    encodeCredit(out, 7, 1000);
    EXPECT_EQ(out.size(), kOpCreditSize);
    out.clear();
    encodeMarkerV2(out, 3, 'B');
    EXPECT_EQ(out.size(), kOpMarkerSize);
    out.clear();
    SubscribeRequest request;
    request.encode(out);
    EXPECT_EQ(out.size(), kOpSubscribeSize);
}

TEST(V2Subscribe, RoundTrip)
{
    SubscribeRequest request;
    request.streamId = 42;
    request.sensorId = 513;
    request.tier = host::Tier::Hz10;
    request.overflow = transport::RingOverflow::DropOldest;
    request.credit = 12345;
    std::vector<std::uint8_t> wire;
    request.encode(wire);

    const auto decoded =
        SubscribeRequest::decode(wire.data() + 1, wire.size() - 1);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->streamId, 42);
    EXPECT_EQ(decoded->sensorId, 513);
    EXPECT_EQ(decoded->tier, host::Tier::Hz10);
    EXPECT_EQ(decoded->rawTier,
              static_cast<std::uint8_t>(host::Tier::Hz10));
    EXPECT_EQ(decoded->overflow,
              transport::RingOverflow::DropOldest);
    EXPECT_EQ(decoded->credit, 12345u);
}

TEST(V2Subscribe, TruncatedBodyReturnsNullopt)
{
    SubscribeRequest request;
    std::vector<std::uint8_t> wire;
    request.encode(wire);
    for (std::size_t cut = 0; cut < kOpSubscribeSize - 1; ++cut)
        EXPECT_FALSE(
            SubscribeRequest::decode(wire.data() + 1, cut)
                .has_value())
            << "decode accepted a " << cut << "-byte body";
}

TEST(V2Subscribe, JunkOverflowByteReturnsNullopt)
{
    SubscribeRequest request;
    std::vector<std::uint8_t> wire;
    request.encode(wire);
    wire[6] = 0xCC; // overflow byte: only 0/1 are meaningful
    EXPECT_FALSE(
        SubscribeRequest::decode(wire.data() + 1, wire.size() - 1)
            .has_value());
}

TEST(V2Subscribe, OutOfRangeTierStillDecodesWithRawTier)
{
    // The server must answer BadTier, which requires the decode to
    // survive and carry the offending byte.
    SubscribeRequest request;
    std::vector<std::uint8_t> wire;
    request.encode(wire);
    wire[5] = host::kMaxTierValue + 3;
    const auto decoded =
        SubscribeRequest::decode(wire.data() + 1, wire.size() - 1);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->rawTier, host::kMaxTierValue + 3);
    EXPECT_EQ(decoded->tier, host::Tier::Raw); // clamped
}

TEST(V2SubscribeAck, RoundTrip)
{
    SubscribeAckFrame ack;
    ack.streamId = 9;
    ack.sensorId = 77;
    ack.status = SubscribeStatus::Ok;
    ack.sampleRateHz = 20000.0;
    std::vector<std::uint8_t> wire;
    ack.encode(wire);

    const auto decoded =
        SubscribeAckFrame::decode(wire.data(), wire.size());
    EXPECT_EQ(decoded.streamId, 9);
    EXPECT_EQ(decoded.sensorId, 77);
    EXPECT_EQ(decoded.status, SubscribeStatus::Ok);
    EXPECT_EQ(decoded.sampleRateHz, 20000.0);
}

TEST(V2SubscribeAck, HostileInputThrows)
{
    SubscribeAckFrame ack;
    std::vector<std::uint8_t> wire;
    ack.encode(wire);
    EXPECT_THROW(
        SubscribeAckFrame::decode(wire.data(), wire.size() - 1),
        DeviceError);
    wire[4] = 200; // unknown status byte
    EXPECT_THROW(SubscribeAckFrame::decode(wire.data(), wire.size()),
                 DeviceError);
}

TEST(V2SensorList, RoundTripWithNameTruncation)
{
    std::vector<SensorDescriptor> sensors(3);
    sensors[0] = {0, 20000.0, "primary"};
    sensors[1] = {1, 1000.0, std::string(300, 'x')}; // truncates
    sensors[2] = {513, 0.5, ""};
    std::vector<std::uint8_t> wire;
    encodeSensorList(wire, sensors);

    const auto decoded = decodeSensorList(wire.data(), wire.size());
    ASSERT_EQ(decoded.size(), 3u);
    EXPECT_EQ(decoded[0].name, "primary");
    EXPECT_EQ(decoded[0].sampleRateHz, 20000.0);
    EXPECT_EQ(decoded[1].name, std::string(255, 'x'));
    EXPECT_EQ(decoded[2].id, 513);
    EXPECT_EQ(decoded[2].name, "");
}

TEST(V2SensorList, HostileInputThrows)
{
    std::vector<SensorDescriptor> sensors(2);
    sensors[0] = {0, 20000.0, "a"};
    sensors[1] = {1, 1000.0, "b"};
    std::vector<std::uint8_t> wire;
    encodeSensorList(wire, sensors);

    // Truncation anywhere in the body must throw, not over-read.
    for (std::size_t cut = 0; cut < wire.size(); ++cut)
        EXPECT_THROW(decodeSensorList(wire.data(), cut),
                     DeviceError)
            << "decode accepted a " << cut << "-byte list";

    // A count the body cannot possibly hold.
    wire[0] = 0xFF;
    wire[1] = 0xFF;
    EXPECT_THROW(decodeSensorList(wire.data(), wire.size()),
                 DeviceError);

    // A row whose name length runs past the end.
    std::vector<std::uint8_t> short_name;
    encodeSensorList(short_name, {{0, 1.0, "abc"}});
    short_name[12] = 200; // name length byte
    EXPECT_THROW(
        decodeSensorList(short_name.data(), short_name.size()),
        DeviceError);
}

TEST(V2Framing, BeginCloseRoundTrip)
{
    std::vector<std::uint8_t> out{0xAA}; // pre-existing bytes stay
    const std::size_t frame =
        beginV2Frame(out, 513, FrameType::Heartbeat);
    appendU64(out, 0x1122334455667788ull);
    closeV2Frame(out, frame);

    ASSERT_EQ(out.size(), 1 + 4 + kV2FrameHeaderSize + 8);
    // Length covers stream id + type + body.
    const std::uint32_t len = out[1] | (out[2] << 8)
                              | (out[3] << 16)
                              | (std::uint32_t(out[4]) << 24);
    EXPECT_EQ(len, kV2FrameHeaderSize + 8);
    EXPECT_EQ(out[5] | (out[6] << 8), 513); // stream id
    EXPECT_EQ(out[7],
              static_cast<std::uint8_t>(FrameType::Heartbeat));
    EXPECT_EQ(readU64(out.data() + 8), 0x1122334455667788ull);
}

TEST(V2Framing, NestedFramesPatchIndependently)
{
    std::vector<std::uint8_t> out;
    const std::size_t a = beginV2Frame(out, 1, FrameType::Data);
    appendU64(out, 7);
    closeV2Frame(out, a);
    const std::size_t b = beginV2Frame(out, 2, FrameType::Eos);
    closeV2Frame(out, b);

    const std::uint32_t len_a = out[0];
    EXPECT_EQ(len_a, kV2FrameHeaderSize + 8);
    const std::size_t second = 4 + len_a;
    EXPECT_EQ(out[second], kV2FrameHeaderSize);
    EXPECT_EQ(out[second + 4] | (out[second + 5] << 8), 2);
    EXPECT_EQ(out[second + 6],
              static_cast<std::uint8_t>(FrameType::Eos));
}

} // namespace
} // namespace ps3::net
