/**
 * @file
 * Unit tests for the DUT electrical models: supplies, rail bindings,
 * loads, trace playback and rail splitting.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "dut/dut.hpp"
#include "dut/loads.hpp"

namespace ps3::dut {
namespace {

TEST(SupplyModel, DroopsUnderLoad)
{
    SupplyModel supply(12.0, 0.05);
    EXPECT_DOUBLE_EQ(supply.voltage(0.0, 0.0), 12.0);
    EXPECT_DOUBLE_EQ(supply.voltage(0.0, 10.0), 11.5);
    supply.setVolts(5.0);
    EXPECT_DOUBLE_EQ(supply.voltage(0.0, 0.0), 5.0);
}

TEST(SupplyModel, RejectsNegativeResistance)
{
    EXPECT_THROW(SupplyModel(12.0, -0.1), UsageError);
}

TEST(RailBinding, ResolvesOperatingPoint)
{
    auto load = std::make_shared<ConstantCurrentLoad>(8.0, 12.0);
    auto supply = std::make_shared<SupplyModel>(12.0, 0.01);
    RailBinding binding(load, 0, supply);
    double volts = 0.0, amps = 0.0;
    binding.resolve(1.0, volts, amps);
    EXPECT_DOUBLE_EQ(amps, 8.0);
    EXPECT_NEAR(volts, 12.0 - 0.08, 1e-9);
}

TEST(RailBinding, ValidatesArguments)
{
    auto load = std::make_shared<ConstantCurrentLoad>(1.0, 12.0);
    auto supply = std::make_shared<SupplyModel>(12.0);
    EXPECT_THROW(RailBinding(nullptr, 0, supply), UsageError);
    EXPECT_THROW(RailBinding(load, 0, nullptr), UsageError);
    EXPECT_THROW(RailBinding(load, 1, supply), UsageError);
}

TEST(ConstantCurrentLoad, BasicBehaviour)
{
    ConstantCurrentLoad load(3.0, 12.0);
    EXPECT_EQ(load.railCount(), 1u);
    EXPECT_DOUBLE_EQ(load.current(0, 0.0, 12.0), 3.0);
    EXPECT_DOUBLE_EQ(load.truePower(0.0), 36.0);
    load.setAmps(-2.0);
    EXPECT_DOUBLE_EQ(load.current(0, 5.0, 12.0), -2.0);
    EXPECT_THROW(load.current(1, 0.0, 12.0), UsageError);
}

TEST(ElectronicLoad, ConstantMode)
{
    ElectronicLoad load(8.0, 12.0);
    EXPECT_DOUBLE_EQ(load.current(0, 0.123, 12.0), 8.0);
    load.setAmps(2.5);
    EXPECT_DOUBLE_EQ(load.current(0, 0.5, 12.0), 2.5);
}

TEST(ElectronicLoad, SquareWaveLevelsAndDuty)
{
    ElectronicLoad load(8.0, 12.0);
    load.modulate(LoadWaveform::Square, 100.0, 0.5);
    // High phase at the start of each period, low in the second
    // half. Sample away from edges.
    EXPECT_DOUBLE_EQ(load.targetCurrent(0.002), 8.0);
    EXPECT_DOUBLE_EQ(load.targetCurrent(0.007), 4.0);
    EXPECT_DOUBLE_EQ(load.targetCurrent(0.012), 8.0);
}

TEST(ElectronicLoad, MinimumCurrentClampsLowPhase)
{
    ElectronicLoad load(8.0, 12.0);
    load.setMinimumCurrent(3.3);
    load.modulate(LoadWaveform::Square, 100.0, 0.9);
    EXPECT_DOUBLE_EQ(load.targetCurrent(0.007), 3.3);
}

TEST(ElectronicLoad, SlewLimitedEdgesFormTrapezoid)
{
    const double slew = 1e5; // 0.1 A/us
    ElectronicLoad load(8.0, 12.0, slew);
    load.modulate(LoadWaveform::Square, 100.0, 0.5);
    // Rise time (8 - 4) / 1e5 = 40 us. Halfway through the rise the
    // current must be halfway up.
    const double i_mid = load.current(0, 20e-6, 12.0);
    EXPECT_NEAR(i_mid, 6.0, 1e-9);
    // Well past the rise: settled at the high level.
    EXPECT_DOUBLE_EQ(load.current(0, 100e-6, 12.0), 8.0);
    // Falling edge at T/2 = 5 ms.
    EXPECT_NEAR(load.current(0, 5e-3 + 20e-6, 12.0), 6.0, 1e-9);
}

TEST(ElectronicLoad, SineWaveSpansLevels)
{
    ElectronicLoad load(8.0, 12.0);
    load.modulate(LoadWaveform::Sine, 50.0, 0.5);
    double min = 1e9, max = -1e9;
    for (double t = 0.0; t < 0.04; t += 1e-4) {
        const double i = load.current(0, t, 12.0);
        min = std::min(min, i);
        max = std::max(max, i);
    }
    EXPECT_NEAR(min, 4.0, 0.05);
    EXPECT_NEAR(max, 8.0, 0.05);
}

TEST(ElectronicLoad, ValidatesModulation)
{
    ElectronicLoad load(8.0, 12.0);
    EXPECT_THROW(load.modulate(LoadWaveform::Square, 0.0, 0.5),
                 UsageError);
    EXPECT_THROW(load.modulate(LoadWaveform::Square, 100.0, 1.5),
                 UsageError);
    EXPECT_THROW(ElectronicLoad(1.0, 12.0, 0.0), UsageError);
}

TEST(TraceDut, InterpolatesLinearly)
{
    TraceDut trace({{0.0, 10.0}, {1.0, 20.0}, {3.0, 20.0}},
                   TraceDut::singleRail12V());
    EXPECT_DOUBLE_EQ(trace.truePower(-1.0), 10.0); // clamped left
    EXPECT_DOUBLE_EQ(trace.truePower(0.5), 15.0);
    EXPECT_DOUBLE_EQ(trace.truePower(2.0), 20.0);
    EXPECT_DOUBLE_EQ(trace.truePower(9.0), 20.0); // clamped right
}

TEST(TraceDut, CurrentFollowsPowerOverVoltage)
{
    TraceDut trace({{0.0, 24.0}}, TraceDut::singleRail12V());
    EXPECT_DOUBLE_EQ(trace.current(0, 0.0, 12.0), 2.0);
    EXPECT_DOUBLE_EQ(trace.current(0, 0.0, 0.0), 0.0); // guard
}

TEST(TraceDut, ValidatesInput)
{
    EXPECT_THROW(TraceDut({}, TraceDut::singleRail12V()),
                 UsageError);
    EXPECT_THROW(TraceDut({{1.0, 5.0}, {0.5, 5.0}},
                          TraceDut::singleRail12V()),
                 UsageError);
    EXPECT_THROW(TraceDut({{0.0, 5.0}}, {}), UsageError);
    TraceDut ok({{0.0, 5.0}}, TraceDut::singleRail12V());
    EXPECT_THROW(ok.current(1, 0.0, 12.0), UsageError);
}

TEST(SplitRailPower, PcieThreeRailBudgets)
{
    const auto rails = TraceDut::pcieThreeRail();
    // Low power: split by fractions, nothing capped.
    const double total_low = 50.0;
    const double p33 = splitRailPower(rails, 0, total_low);
    const double p12 = splitRailPower(rails, 1, total_low);
    const double pext = splitRailPower(rails, 2, total_low);
    EXPECT_NEAR(p33, 50.0 * 0.08, 1e-9);
    EXPECT_NEAR(p12, 50.0 * 0.5, 1e-9);
    EXPECT_NEAR(p33 + p12 + pext, total_low, 1e-9);

    // High power: slot rails cap out, the external connector takes
    // the remainder (PCIe CEM behaviour the paper describes).
    const double total_high = 300.0;
    EXPECT_NEAR(splitRailPower(rails, 0, total_high), 9.9, 1e-9);
    EXPECT_NEAR(splitRailPower(rails, 1, total_high), 66.0, 1e-9);
    EXPECT_NEAR(splitRailPower(rails, 2, total_high),
                300.0 - 9.9 - 66.0, 1e-9);
}

TEST(SplitRailPower, ConservesTotalForAnyLoad)
{
    const auto rails = TraceDut::pcieThreeRail();
    for (double total = 0.0; total <= 600.0; total += 17.0) {
        double sum = 0.0;
        for (unsigned rail = 0; rail < rails.size(); ++rail)
            sum += splitRailPower(rails, rail, total);
        EXPECT_NEAR(sum, total, 1e-9) << "total=" << total;
    }
}

TEST(SplitRailPower, M2AdapterRoutesBulkTo3V3)
{
    const auto rails = TraceDut::m2AdapterRails();
    const double total = 6.0;
    const double p12 = splitRailPower(rails, 0, total);
    const double p33 = splitRailPower(rails, 1, total);
    EXPECT_LE(p12, 0.4 + 1e-9);
    EXPECT_NEAR(p12 + p33, total, 1e-9);
    EXPECT_GT(p33, 5.0);
}

} // namespace
} // namespace ps3::dut
