/**
 * @file
 * Unit tests for the firmware emulation: EEPROM, command handling,
 * streaming, timing, markers, fences, display and reboot.
 */

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "analog/sensor_module_spec.hpp"
#include "common/errors.hpp"
#include "dut/loads.hpp"
#include "firmware/firmware.hpp"
#include "host/stream_parser.hpp"

namespace ps3::firmware {
namespace {

/** Build a firmware with one 12 V / 10 A module on a constant load. */
std::unique_ptr<Firmware>
makeBenchFirmware(double amps = 2.0, const std::string &eeprom = "")
{
    auto fw = std::make_unique<Firmware>(eeprom);
    auto load = std::make_shared<dut::ConstantCurrentLoad>(amps, 12.0);
    auto supply = std::make_shared<dut::SupplyModel>(12.0);
    fw->attachModule(0,
                     makeModule(analog::modules::slot12V10A(), load,
                                0, supply, /*seed=*/1));
    return fw;
}

void
sendByte(Firmware &fw, char c)
{
    const auto byte = static_cast<std::uint8_t>(c);
    fw.hostWrite(&byte, 1);
}

std::vector<std::uint8_t>
drain(Firmware &fw, std::size_t max = 1 << 20)
{
    std::vector<std::uint8_t> out;
    std::uint8_t buffer[4096];
    while (out.size() < max) {
        const std::size_t got =
            fw.produce(buffer, std::min(sizeof(buffer),
                                        max - out.size()));
        if (got == 0)
            break;
        out.insert(out.end(), buffer, buffer + got);
    }
    return out;
}

TEST(VirtualEepromTest, VolatileStoreRoundTrips)
{
    VirtualEeprom eeprom;
    SensorConfigRecord record;
    record.name = "abc";
    record.vref = 1.5f;
    record.inUse = true;
    eeprom.storeChannel(3, record);
    EXPECT_EQ(eeprom.loadChannel(3), record);
    EXPECT_THROW(eeprom.loadChannel(8), UsageError);
    EXPECT_THROW(eeprom.storeChannel(99, record), UsageError);
}

TEST(VirtualEepromTest, PersistsAcrossInstances)
{
    const std::string path = "/tmp/ps3_test_eeprom.bin";
    std::filesystem::remove(path);
    {
        VirtualEeprom eeprom(path);
        SensorConfigRecord record;
        record.name = "persisted";
        record.slope = 0.132f;
        record.inUse = true;
        eeprom.storeChannel(0, record);
    }
    VirtualEeprom restored(path);
    EXPECT_EQ(restored.loadChannel(0).name, "persisted");
    EXPECT_FLOAT_EQ(restored.loadChannel(0).slope, 0.132f);
    std::filesystem::remove(path);
}

TEST(VirtualEepromTest, IgnoresCorruptBackingFile)
{
    const std::string path = "/tmp/ps3_test_eeprom_bad.bin";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("garbage", f);
    std::fclose(f);
    VirtualEeprom eeprom(path); // must not throw
    EXPECT_FALSE(eeprom.loadChannel(0).inUse);
    std::filesystem::remove(path);
}

TEST(FirmwareTest, SilentUntilStreamingStarts)
{
    auto fw = makeBenchFirmware();
    std::uint8_t buffer[64];
    EXPECT_EQ(fw->produce(buffer, sizeof(buffer)), 0u);
    EXPECT_FALSE(fw->streaming());
    sendByte(*fw, 'S');
    EXPECT_TRUE(fw->streaming());
    EXPECT_GT(fw->produce(buffer, sizeof(buffer)), 0u);
    sendByte(*fw, 'P');
    EXPECT_FALSE(fw->streaming());
}

TEST(FirmwareTest, FrameSetTimingIsExactly50us)
{
    auto fw = makeBenchFirmware();
    sendByte(*fw, 'S');
    drain(*fw, 6 * 1000);
    // Each frame set advances the clock by exactly 50 us regardless
    // of module population.
    const double per_set =
        fw->clock().now()
        / static_cast<double>(fw->frameSetsProduced());
    EXPECT_NEAR(per_set, 50e-6, 1e-12);
}

TEST(FirmwareTest, StreamStructureParses)
{
    auto fw = makeBenchFirmware(5.0);
    sendByte(*fw, 'S');
    const auto bytes = drain(*fw, 6 * 100);

    unsigned sets = 0;
    host::StreamParser parser([&](const host::FrameSet &set) {
        ++sets;
        EXPECT_TRUE(set.valid[0]); // current channel
        EXPECT_TRUE(set.valid[1]); // voltage channel
        EXPECT_FALSE(set.valid[2]);
    });
    parser.feed(bytes.data(), bytes.size());
    EXPECT_GT(sets, 90u);
    EXPECT_EQ(parser.resyncByteCount(), 0u);
}

TEST(FirmwareTest, DisabledChannelsAreNotTransmitted)
{
    auto fw = makeBenchFirmware();
    auto config = fw->eeprom().load();
    config[1].inUse = false; // disable the voltage channel
    fw->eeprom().store(config);
    fw->refreshConfigFromEeprom();

    sendByte(*fw, 'S');
    const auto bytes = drain(*fw, 4 * 100);
    host::StreamParser parser([&](const host::FrameSet &set) {
        EXPECT_TRUE(set.valid[0]);
        EXPECT_FALSE(set.valid[1]);
    });
    parser.feed(bytes.data(), bytes.size());
    EXPECT_GT(parser.frameSetCount(), 50u);
}

TEST(FirmwareTest, ConfigReadWriteOverTheWire)
{
    auto fw = makeBenchFirmware();

    sendByte(*fw, 'R');
    auto response = drain(*fw);
    ASSERT_EQ(response.size(), 1 + kConfigBlobSize);
    EXPECT_EQ(response[0], kAck);
    auto config =
        deserializeConfig(response.data() + 1, kConfigBlobSize);
    EXPECT_EQ(config[0].name, "12V-10A");

    // Write a modified configuration back.
    config[0].name = "renamed";
    sendByte(*fw, 'W');
    const auto blob = serializeConfig(config);
    fw->hostWrite(blob.data(), blob.size());
    response = drain(*fw);
    ASSERT_EQ(response.size(), 1u);
    EXPECT_EQ(response[0], kAck);
    EXPECT_EQ(fw->eeprom().loadChannel(0).name, "renamed");
}

TEST(FirmwareTest, ConfigWriteWithBadChecksumNacks)
{
    auto fw = makeBenchFirmware();
    sendByte(*fw, 'W');
    auto blob = serializeConfig(fw->eeprom().load());
    blob.back() ^= 0xFF;
    fw->hostWrite(blob.data(), blob.size());
    const auto response = drain(*fw);
    ASSERT_EQ(response.size(), 1u);
    EXPECT_EQ(response[0], kNack);
}

TEST(FirmwareTest, ConfigCommandsRejectedWhileStreaming)
{
    auto fw = makeBenchFirmware();
    sendByte(*fw, 'S');
    drain(*fw, 64);
    sendByte(*fw, 'R');
    // The NACK is queued behind stream data; stop and inspect the
    // tail byte.
    sendByte(*fw, 'P');
    const auto bytes = drain(*fw);
    ASSERT_FALSE(bytes.empty());
    EXPECT_EQ(bytes.back(), kNack);
}

TEST(FirmwareTest, VersionQuery)
{
    auto fw = makeBenchFirmware();
    sendByte(*fw, 'V');
    const auto response = drain(*fw);
    ASSERT_GT(response.size(), 2u);
    EXPECT_EQ(response[0], kAck);
    const std::size_t len = response[1];
    ASSERT_EQ(response.size(), 2 + len);
    EXPECT_EQ(std::string(response.begin() + 2, response.end()),
              firmwareVersion());
}

TEST(FirmwareTest, TimeSyncReportsClockMicros)
{
    auto fw = makeBenchFirmware();
    sendByte(*fw, 'S');
    drain(*fw, 6 * 500); // advance the clock a bit
    sendByte(*fw, 'P');
    drain(*fw);

    sendByte(*fw, 'T');
    const auto response = drain(*fw);
    ASSERT_EQ(response.size(), 9u);
    EXPECT_EQ(response[0], kAck);
    std::uint64_t micros = 0;
    for (int i = 8; i >= 1; --i)
        micros = (micros << 8) | response[static_cast<size_t>(i)];
    EXPECT_NEAR(static_cast<double>(micros),
                fw->clock().now() * 1e6, 2.0);
}

TEST(FirmwareTest, UnknownCommandNacks)
{
    auto fw = makeBenchFirmware();
    sendByte(*fw, 'Z');
    const auto response = drain(*fw);
    ASSERT_EQ(response.size(), 1u);
    EXPECT_EQ(response[0], kNack);
}

TEST(FirmwareTest, MarkerFlagsOneFrameSetPerRequest)
{
    auto fw = makeBenchFirmware();
    sendByte(*fw, 'S');
    drain(*fw, 6 * 10);
    // Two markers queued back-to-back flag two consecutive sets.
    const std::uint8_t m1[] = {'M', 'a'};
    const std::uint8_t m2[] = {'M', 'b'};
    fw->hostWrite(m1, 2);
    fw->hostWrite(m2, 2);
    const auto bytes = drain(*fw, 6 * 10);

    unsigned flagged = 0;
    host::StreamParser parser([&](const host::FrameSet &set) {
        if (set.marker)
            ++flagged;
    });
    parser.feed(bytes.data(), bytes.size());
    EXPECT_EQ(flagged, 2u);
}

TEST(FirmwareTest, ProductionFenceStopsTime)
{
    auto fw = makeBenchFirmware();
    sendByte(*fw, 'S');
    const double fence = 0.01;
    fw->setProductionFence(fence);
    drain(*fw);
    EXPECT_LE(fw->clock().now(), fence + 60e-6);
    // Moving the fence resumes production.
    fw->setProductionFence(0.02);
    EXPECT_FALSE(drain(*fw).empty());
    EXPECT_GT(fw->clock().now(), fence);
}

TEST(FirmwareTest, RebootClearsStateButKeepsEeprom)
{
    auto fw = makeBenchFirmware();
    sendByte(*fw, 'S');
    drain(*fw, 64);
    sendByte(*fw, 'B');
    EXPECT_FALSE(fw->streaming());
    EXPECT_FALSE(fw->inDfuMode());
    const auto response = drain(*fw);
    ASSERT_EQ(response.size(), 1u); // tx queue was cleared, ack only
    EXPECT_EQ(response[0], kAck);
    EXPECT_EQ(fw->eeprom().loadChannel(0).name, "12V-10A");

    sendByte(*fw, 'D');
    EXPECT_TRUE(fw->inDfuMode());
}

TEST(FirmwareTest, DisplayShowsLoadPower)
{
    auto fw = makeBenchFirmware(5.0);
    sendByte(*fw, 'S');
    // Display refreshes every 2000 frame sets (10 Hz at 20 kHz).
    drain(*fw, 6 * 2100);
    EXPECT_GE(fw->display().updateCount(), 1u);
    EXPECT_NEAR(fw->display().totalPower(), 60.0, 3.0);
    const auto lines = fw->display().render();
    ASSERT_EQ(lines.size(), 1 + kPairCount);
    EXPECT_NE(lines[0].find("W"), std::string::npos);
    EXPECT_NE(lines[1].find("A"), std::string::npos);
    EXPECT_NE(lines[2].find("--"), std::string::npos);
}

TEST(FirmwareTest, AttachModuleValidation)
{
    auto fw = makeBenchFirmware();
    auto load = std::make_shared<dut::ConstantCurrentLoad>(1.0, 12.0);
    auto supply = std::make_shared<dut::SupplyModel>(12.0);
    EXPECT_THROW(fw->attachModule(
                     4, makeModule(analog::modules::slot12V10A(),
                                   load, 0, supply, 1)),
                 UsageError);
}

TEST(FirmwareTest, ManufacturingSpreadIsDeterministic)
{
    const auto a = ManufacturingSpread::typical(5);
    const auto b = ManufacturingSpread::typical(5);
    const auto c = ManufacturingSpread::typical(6);
    EXPECT_DOUBLE_EQ(a.currentOffsetAmps, b.currentOffsetAmps);
    EXPECT_NE(a.currentOffsetAmps, c.currentOffsetAmps);
    EXPECT_LE(std::abs(a.currentOffsetAmps), 0.15);
    EXPECT_LE(std::abs(a.currentGainError), 0.003);
    EXPECT_LE(std::abs(a.voltageGainError), 0.01);
}

} // namespace
} // namespace ps3::firmware
