/**
 * @file
 * Shared-memory transport tests: the ShmInfo handover codec,
 * segment creation / sealing / descriptor passing, the
 * ShmSubscriber attach + zero-syscall poll contract (the data plane
 * keeps flowing with the control socket gone), exact lap
 * accounting, and NetPowerSensor end-to-end over shm:// — including
 * a daemon restart surfacing as a reconnect plus a gap event.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

#include "common/errors.hpp"
#include "net/net_power_sensor.hpp"
#include "net/server.hpp"
#include "net/shm_stream.hpp"
#include "net/wire.hpp"
#include "transport/broadcast_ring.hpp"
#include "transport/shm_segment.hpp"
#include "transport/socket_device.hpp"

namespace ps3::net {
namespace {

using transport::Endpoint;
using transport::ShmSegment;

/** Unique Unix-socket path per test (sockets are process-scoped). */
std::string
socketPath()
{
    static std::atomic<int> counter{0};
    return "/tmp/ps3_shm_test_" + std::to_string(::getpid()) + "_"
           + std::to_string(counter.fetch_add(1)) + ".sock";
}

/** A recognisable sensor configuration for handshake echoes. */
firmware::DeviceConfig
testConfig()
{
    firmware::DeviceConfig config{};
    config[0].inUse = true;
    config[0].name = "12V-10A";
    config[0].vref = 1.65;
    config[0].slope = 0.11;
    config[1].inUse = true;
    config[1].slope = 0.09;
    return config;
}

host::DumpRecord
testRecord(double time, std::uint8_t mask)
{
    host::DumpRecord record;
    record.time = time;
    for (unsigned pair = 0; pair < host::kMaxPairs; ++pair) {
        record.voltage[pair] = 12.0 + pair;
        record.current[pair] = 0.5 * pair;
    }
    record.presentMask = mask;
    return record;
}

/** Publish one encoded record into a raw stream ring. */
void
publishSlot(StreamRing &ring, double time)
{
    StreamSlot slot{};
    slot.record = testRecord(time, 0x1);
    slot.encodedLen = encodeRecordTo(slot.encoded, slot.record);
    ring.publish(slot);
}

/** Poll `pred` until it holds or `seconds` elapse. */
template <typename Pred>
bool
waitFor(Pred pred, double seconds = 5.0)
{
    const auto deadline =
        std::chrono::steady_clock::now()
        + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(seconds));
    while (!pred()) {
        if (std::chrono::steady_clock::now() > deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return true;
}

/** Read exactly n bytes with an overall deadline. */
bool
readAll(transport::SocketDevice &socket, std::uint8_t *out,
        std::size_t n, double seconds)
{
    const auto deadline =
        std::chrono::steady_clock::now()
        + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(seconds));
    std::size_t got = 0;
    while (got < n) {
        got += socket.read(out + got, n - got, 0.2);
        if (std::chrono::steady_clock::now() > deadline)
            return false;
    }
    return true;
}

// ----- ShmInfo codec -----------------------------------------------------

TEST(ShmInfo, CodecRoundTripAndRejects)
{
    ShmInfo info;
    info.segmentBytes = 123456789;
    std::uint8_t frame[kShmInfoSize];
    info.encode(frame);

    const ShmInfo back = ShmInfo::decode(frame, sizeof frame);
    EXPECT_EQ(back.segmentBytes, 123456789u);

    EXPECT_THROW(ShmInfo::decode(frame, kShmInfoSize - 1),
                 DeviceError);

    std::uint8_t bad[kShmInfoSize];
    std::memcpy(bad, frame, sizeof frame);
    bad[0] = 'X';
    EXPECT_THROW(ShmInfo::decode(bad, sizeof bad), DeviceError);

    std::memcpy(bad, frame, sizeof frame);
    bad[4] = kShmVersion + 1;
    EXPECT_THROW(ShmInfo::decode(bad, sizeof bad), DeviceError);
}

// ----- segments ----------------------------------------------------------

TEST(ShmSegment, CreateSealsAndRoundTripsBytes)
{
    ShmSegment segment = ShmSegment::create(8192, "ps3-test");
    ASSERT_TRUE(segment.valid());
    EXPECT_GE(segment.size(), 8192u);
    ASSERT_GE(segment.fd(), 0);

    std::memset(segment.data(), 0xAB, 16);

    // Grow/shrink are sealed: a subscriber's mapping can never be
    // truncated under it.
    EXPECT_NE(::ftruncate(segment.fd(),
                          static_cast<off_t>(segment.size() * 2)),
              0);

    const int dup_fd = ::dup(segment.fd());
    ASSERT_GE(dup_fd, 0);
    ShmSegment view = ShmSegment::attach(dup_fd, true);
    ASSERT_TRUE(view.valid());
    EXPECT_EQ(view.size(), segment.size());
    EXPECT_EQ(static_cast<const std::uint8_t *>(view.data())[3],
              0xAB);
}

TEST(ShmSegment, DescriptorRidesTheControlMessage)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    ShmSegment segment = ShmSegment::create(4096, "ps3-fdpass");
    ASSERT_TRUE(segment.valid());
    static_cast<std::uint8_t *>(segment.data())[0] = 0x5A;

    const std::uint8_t payload[4] = {1, 2, 3, 4};
    transport::sendWithFd(fds[0], payload, sizeof payload,
                          segment.fd());

    std::uint8_t got[4] = {0, 0, 0, 0};
    int received_fd = -1;
    ASSERT_TRUE(transport::recvWithFd(fds[1], got, sizeof got,
                                      received_fd, 1.0));
    EXPECT_EQ(std::memcmp(got, payload, sizeof payload), 0);
    ASSERT_GE(received_fd, 0);

    ShmSegment view = ShmSegment::attach(received_fd, true);
    ASSERT_TRUE(view.valid());
    EXPECT_EQ(static_cast<const std::uint8_t *>(view.data())[0],
              0x5A);

    ::close(fds[0]);
    ::close(fds[1]);
}

// ----- stream slots ------------------------------------------------------

TEST(ShmStream, SlotExposesEncodedLengthAsOneWord)
{
    ShmSegment segment =
        ShmSegment::create(StreamRing::bytesRequired(4), "ps3-slot");
    ASSERT_TRUE(segment.valid());
    StreamRing *ring =
        StreamRing::create(segment.data(), segment.size(), 4);
    ASSERT_NE(ring, nullptr);

    StreamSlot slot{};
    slot.record = testRecord(1.5, 0x3);
    slot.encodedLen = encodeRecordTo(slot.encoded, slot.record);
    ASSERT_GT(slot.encodedLen, 0u);
    ring->publish(slot);

    // The sender peeks the length atomically before gathering.
    EXPECT_EQ(ring->wordAt(0, kSlotLenWord), slot.encodedLen);
    EXPECT_TRUE(ring->stillValid(0));

    StreamSlot out{};
    ASSERT_EQ(ring->readAt(0, out), transport::BroadcastRead::Ok);
    EXPECT_EQ(out.record.time, 1.5);
    EXPECT_EQ(out.encodedLen, slot.encodedLen);
    EXPECT_EQ(std::memcmp(out.encoded, slot.encoded,
                          static_cast<std::size_t>(slot.encodedLen)),
              0);

    // Fill the ring: slot 0 is reused and no longer vouches.
    for (int i = 0; i < 4; ++i)
        publishSlot(*ring, 2.0 + i);
    EXPECT_FALSE(ring->stillValid(0));
}

// ----- subscriber data plane ---------------------------------------------

TEST(ShmStream, SubscriberDrainsTheRingWithTheControlSocketGone)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    transport::SocketDevice serverSide(fds[0]);
    transport::SocketDevice clientSide(fds[1]);

    ShmSegment segment =
        ShmSegment::create(StreamRing::bytesRequired(64), "ps3-ring");
    StreamRing *ring =
        StreamRing::create(segment.data(), segment.size(), 64);
    ASSERT_NE(ring, nullptr);

    // Records published before the handover are not replayed: a
    // subscriber joins at the live tail like a socket client.
    for (int i = 0; i < 3; ++i)
        publishSlot(*ring, 0.1 * i);

    sendShmHandover(serverSide, segment);
    std::unique_ptr<ShmSubscriber> sub =
        ShmSubscriber::attach(clientSide, 1.0);
    ASSERT_NE(sub, nullptr);
    EXPECT_EQ(sub->position(), ring->tail());

    for (int i = 0; i < 10; ++i)
        publishSlot(*ring, 1.0 + i);

    // Kill the control socket entirely: the data plane is a pure
    // memory mapping and must keep working without it.
    serverSide.abort();

    host::DumpRecord record;
    std::uint64_t seq = 0;
    for (int i = 0; i < 10; ++i) {
        ASSERT_EQ(sub->poll(record, seq),
                  ShmSubscriber::Poll::Record);
        EXPECT_EQ(seq, 3u + static_cast<std::uint64_t>(i));
        EXPECT_EQ(record.time, 1.0 + i);
    }
    EXPECT_EQ(sub->poll(record, seq), ShmSubscriber::Poll::Empty);
    EXPECT_EQ(sub->lapped(), 0u);

    // Graceful end: producer-gone plus a drained ring.
    ring->markProducerGone();
    EXPECT_EQ(sub->poll(record, seq),
              ShmSubscriber::Poll::EndOfStream);
}

TEST(ShmStream, HeartbeatStallFlagsDeadProducer)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    transport::SocketDevice serverSide(fds[0]);
    transport::SocketDevice clientSide(fds[1]);

    ShmSegment segment =
        ShmSegment::create(StreamRing::bytesRequired(8), "ps3-beat");
    StreamRing *ring =
        StreamRing::create(segment.data(), segment.size(), 8);
    ASSERT_NE(ring, nullptr);

    sendShmHandover(serverSide, segment);
    std::unique_ptr<ShmSubscriber> sub =
        ShmSubscriber::attach(clientSide, 1.0);
    ASSERT_NE(sub, nullptr);

    ring->bumpHeartbeat();
    EXPECT_TRUE(sub->producerAlive(0.05));

    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    EXPECT_FALSE(sub->producerAlive(0.05));

    ring->bumpHeartbeat();
    EXPECT_TRUE(sub->producerAlive(0.05));
}

TEST(ShmStream, LapsAreAccountedExactly)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    transport::SocketDevice serverSide(fds[0]);
    transport::SocketDevice clientSide(fds[1]);

    constexpr std::size_t kCapacity = 64;
    constexpr std::uint64_t kPublished = 1000;
    ShmSegment segment = ShmSegment::create(
        StreamRing::bytesRequired(kCapacity), "ps3-lap");
    StreamRing *ring = StreamRing::create(segment.data(),
                                          segment.size(), kCapacity);
    ASSERT_NE(ring, nullptr);

    sendShmHandover(serverSide, segment);
    std::unique_ptr<ShmSubscriber> sub =
        ShmSubscriber::attach(clientSide, 1.0);
    ASSERT_NE(sub, nullptr);

    // A wedged subscriber: the producer laps it many times over.
    for (std::uint64_t i = 0; i < kPublished; ++i)
        publishSlot(*ring, 0.001 * static_cast<double>(i));

    host::DumpRecord record;
    std::uint64_t seq = 0;
    std::uint64_t delivered = 0;
    std::uint64_t first_seq = 0;
    while (sub->poll(record, seq) == ShmSubscriber::Poll::Record) {
        if (delivered == 0)
            first_seq = seq;
        ++delivered;
    }

    EXPECT_EQ(first_seq, ring->oldest());
    EXPECT_EQ(delivered, kCapacity);
    EXPECT_EQ(sub->lapped(), kPublished - kCapacity);
    EXPECT_EQ(delivered + sub->lapped(), kPublished);
}

// ----- end-to-end over shm:// --------------------------------------------

TEST(NetShm, ClientStreamsOverSharedMemory)
{
    const std::string path = socketPath();
    Ps3Server::Options sopt;
    sopt.queueCapacity = 4096;
    Ps3Server server(testConfig(), "5.1-shm", sopt);
    server.listen(Endpoint::parse("shm://" + path));

    NetPowerSensor client("shm://" + path);
    EXPECT_EQ(client.tier(), host::Tier::Raw);
    EXPECT_EQ(client.firmwareVersion(), "5.1-shm");

    constexpr std::uint64_t kRecords = 2000;
    for (std::uint64_t i = 0; i < kRecords; ++i)
        server.publish(
            testRecord(0.001 * static_cast<double>(i), 0x3));

    ASSERT_TRUE(waitFor(
        [&] { return client.recordsReceived() == kRecords; }));
    EXPECT_EQ(client.gapEvents(), 0u);
    EXPECT_EQ(client.gapRecords(), 0u);

    // The state machinery runs off the mapped stream.
    server.publish(testRecord(99.0, 0x3));
    EXPECT_TRUE(client.waitUntil(99.0));

    server.stop();
    ASSERT_TRUE(waitFor([&] { return client.deviceGone(); }));
    EXPECT_EQ(client.recordsReceived(), kRecords + 1);
    EXPECT_EQ(client.reconnects(), 0u);
}

TEST(NetShm, DaemonRestartSurfacesGapAndReconnects)
{
    const std::string path = socketPath();

    // A hand-rolled first daemon whose death is abrupt: handshake +
    // handover, stream a few records, then vanish without the
    // producer-gone flag (a real crash).
    ShmSegment segment =
        ShmSegment::create(StreamRing::bytesRequired(256), "ps3-gap");
    StreamRing *ring =
        StreamRing::create(segment.data(), segment.size(), 256);
    ASSERT_NE(ring, nullptr);

    auto listener = std::make_unique<transport::SocketListener>(
        Endpoint::parse("unix://" + path));
    std::unique_ptr<transport::SocketDevice> conn;
    std::thread acceptor([&] {
        conn = listener->accept(5.0);
        if (!conn)
            return;
        std::uint8_t hello[kClientHelloSize];
        if (!readAll(*conn, hello, sizeof hello, 2.0))
            return;
        HelloStatus reject = HelloStatus::Ok;
        const auto parsed =
            ClientHello::decode(hello, sizeof hello, reject);
        if (!parsed)
            return;
        ServerHello reply;
        reply.status = HelloStatus::Ok;
        reply.sampleRateHz = 1000.0;
        reply.firmwareVersion = "manual-1";
        reply.config = testConfig();
        const auto bytes = reply.encode();
        conn->write(bytes.data(), bytes.size());
        sendShmHandover(*conn, segment);
    });

    NetPowerSensor::Options copt;
    copt.autoReconnect = true;
    copt.maxReconnectAttempts = 100;
    copt.reconnectInitialBackoff = 0.02;
    copt.reconnectMaxBackoff = 0.1;
    // The manual daemon bumps no heartbeat; keep liveness out of the
    // picture so the reconnect is driven by the socket EOF alone.
    copt.idleTimeout = 30.0;
    NetPowerSensor client("shm://" + path, copt);
    acceptor.join();
    ASSERT_NE(conn, nullptr);

    constexpr std::uint64_t kFirstBatch = 50;
    for (std::uint64_t i = 0; i < kFirstBatch; ++i)
        publishSlot(*ring, 0.001 * static_cast<double>(i));
    ASSERT_TRUE(waitFor(
        [&] { return client.recordsReceived() == kFirstBatch; }));

    // Crash: control socket dies, the listener goes away, no
    // producer-gone flag is ever set.
    conn->abort();
    listener.reset();

    // The restarted daemon: a real server on the same path, whose
    // sequence numbers start over from zero.
    Ps3Server server(testConfig(), "5.2-shm");
    server.listen(Endpoint::parse("shm://" + path));

    ASSERT_TRUE(waitFor([&] { return client.reconnects() == 1; }));
    EXPECT_FALSE(client.deviceGone());

    constexpr std::uint64_t kSecondBatch = 20;
    for (std::uint64_t i = 0; i < kSecondBatch; ++i)
        server.publish(
            testRecord(10.0 + 0.001 * static_cast<double>(i), 0x1));
    ASSERT_TRUE(waitFor([&] {
        return client.recordsReceived() == kFirstBatch + kSecondBatch;
    }));

    // The restart shows up as a gap of unknown size, exactly like a
    // socket stream whose server came back.
    EXPECT_GE(client.gapEvents(), 1u);

    server.stop();
    ASSERT_TRUE(waitFor([&] { return client.deviceGone(); }));
}

} // namespace
} // namespace ps3::net
