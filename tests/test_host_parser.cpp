/**
 * @file
 * Unit and property tests for the host stream parser:
 * resynchronisation, timestamp unwrapping, arbitrary chunking.
 */

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "host/stream_parser.hpp"

namespace ps3::host {
namespace {

using firmware::encodeFrame;
using firmware::Frame;
using firmware::makeTimestampFrame;

/** Append a frame's two bytes to a stream. */
void
push(std::vector<std::uint8_t> &stream, const Frame &frame)
{
    const auto bytes = encodeFrame(frame);
    stream.push_back(bytes[0]);
    stream.push_back(bytes[1]);
}

/** Build n frame sets with 2 channels, 50 us apart. */
std::vector<std::uint8_t>
makeStream(unsigned n, std::uint64_t start_micros = 25,
           bool mark_first = false)
{
    std::vector<std::uint8_t> stream;
    std::uint64_t micros = start_micros;
    for (unsigned i = 0; i < n; ++i) {
        push(stream, makeTimestampFrame(micros));
        Frame current;
        current.sensorId = 0;
        current.level = static_cast<std::uint16_t>(500 + i % 10);
        current.marker = mark_first && i == 0;
        push(stream, current);
        Frame voltage;
        voltage.sensorId = 1;
        voltage.level = 700;
        push(stream, voltage);
        micros += 50;
    }
    return stream;
}

TEST(StreamParser, RejectsNullCallback)
{
    EXPECT_THROW(StreamParser(nullptr), UsageError);
}

TEST(StreamParser, ParsesCleanStream)
{
    const auto stream = makeStream(100);
    std::vector<FrameSet> sets;
    StreamParser parser([&](const FrameSet &s) { sets.push_back(s); });
    parser.feed(stream.data(), stream.size());

    // The final set stays pending until the next timestamp arrives.
    ASSERT_EQ(sets.size(), 99u);
    EXPECT_EQ(parser.resyncByteCount(), 0u);
    EXPECT_TRUE(sets[0].valid[0]);
    EXPECT_TRUE(sets[0].valid[1]);
    EXPECT_EQ(sets[0].level[1], 700);
    for (std::size_t i = 1; i < sets.size(); ++i) {
        ASSERT_NEAR(sets[i].deviceTime - sets[i - 1].deviceTime,
                    50e-6, 1e-12);
    }
}

TEST(StreamParser, MarkerFlagSurfaces)
{
    const auto stream = makeStream(3, 25, /*mark_first=*/true);
    std::vector<FrameSet> sets;
    StreamParser parser([&](const FrameSet &s) { sets.push_back(s); });
    parser.feed(stream.data(), stream.size());
    ASSERT_EQ(sets.size(), 2u);
    EXPECT_TRUE(sets[0].marker);
    EXPECT_FALSE(sets[1].marker);
}

/** Property: any chunking of the byte stream parses identically. */
class ParserChunking : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(ParserChunking, ChunkSizeIndependent)
{
    const auto stream = makeStream(200);
    std::vector<double> reference_times;
    {
        StreamParser parser([&](const FrameSet &s) {
            reference_times.push_back(s.deviceTime);
        });
        parser.feed(stream.data(), stream.size());
    }

    std::vector<double> chunked_times;
    StreamParser parser([&](const FrameSet &s) {
        chunked_times.push_back(s.deviceTime);
    });
    const std::size_t chunk = GetParam();
    for (std::size_t pos = 0; pos < stream.size(); pos += chunk) {
        parser.feed(stream.data() + pos,
                    std::min(chunk, stream.size() - pos));
    }
    EXPECT_EQ(chunked_times, reference_times);
}

INSTANTIATE_TEST_SUITE_P(Chunks, ParserChunking,
                         ::testing::Values(1u, 2u, 3u, 7u, 64u,
                                           1000u));

TEST(StreamParser, TimestampUnwrapsAcrossThe10BitBoundary)
{
    // 50 us steps wrap the 10-bit microsecond counter every ~20.5
    // sets; run long enough to wrap many times.
    const auto stream = makeStream(2000);
    std::vector<double> times;
    StreamParser parser([&](const FrameSet &s) {
        times.push_back(s.deviceTime);
    });
    parser.feed(stream.data(), stream.size());
    ASSERT_EQ(times.size(), 1999u);
    EXPECT_NEAR(times.back() - times.front(), 1998 * 50e-6, 1e-12);
}

TEST(StreamParser, BaseMicrosAnchorsAbsoluteTime)
{
    StreamParser parser([](const FrameSet &) {});
    parser.setBaseMicros(1000000); // 1 s
    std::vector<std::uint8_t> stream = makeStream(2, 1000025);
    std::vector<double> times;
    StreamParser anchored([&](const FrameSet &s) {
        times.push_back(s.deviceTime);
    });
    anchored.setBaseMicros(1000000);
    anchored.feed(stream.data(), stream.size());
    ASSERT_EQ(times.size(), 1u);
    EXPECT_NEAR(times[0], 1.000025, 1e-12);
}

TEST(StreamParser, BaseMicrosAfterFirstTimestampThrows)
{
    StreamParser parser([](const FrameSet &) {});
    const auto stream = makeStream(2);
    parser.feed(stream.data(), stream.size());
    EXPECT_THROW(parser.setBaseMicros(5), UsageError);
}

TEST(StreamParser, ResyncsAfterInjectedGarbage)
{
    auto stream = makeStream(50);
    // Inject garbage (second-byte-role bytes) mid-stream, at a frame
    // boundary 10 sets in (6 bytes per set).
    const std::size_t cut = 10 * 6;
    std::vector<std::uint8_t> noisy(stream.begin(),
                                    stream.begin() + cut);
    for (int i = 0; i < 5; ++i)
        noisy.push_back(0x33); // bit 7 clear: hunts past them
    noisy.insert(noisy.end(), stream.begin() + cut, stream.end());

    unsigned sets = 0;
    StreamParser parser([&](const FrameSet &) { ++sets; });
    parser.feed(noisy.data(), noisy.size());
    EXPECT_GE(sets, 48u);
    EXPECT_GT(parser.resyncByteCount(), 0u);
}

TEST(StreamParser, RecoversFromLostSecondByte)
{
    auto stream = makeStream(50);
    // Drop one second-byte: the parser sees two first-bytes in a
    // row, drops the orphan and keeps going.
    stream.erase(stream.begin() + 6 * 20 + 1);
    unsigned sets = 0;
    StreamParser parser([&](const FrameSet &) { ++sets; });
    parser.feed(stream.data(), stream.size());
    EXPECT_GE(sets, 47u);
    EXPECT_GT(parser.resyncByteCount(), 0u);
}

TEST(StreamParser, RandomCorruptionLosesBoundedData)
{
    // Property: with 0.5% random byte corruption, at least 90% of
    // frame sets still parse and time stays monotonic.
    auto stream = makeStream(2000);
    Rng rng(77);
    for (auto &byte : stream) {
        if (rng.bernoulli(0.005))
            byte ^= static_cast<std::uint8_t>(
                rng.uniformInt(1, 255));
    }
    unsigned sets = 0;
    double last_time = -1.0;
    bool monotonic = true;
    StreamParser parser([&](const FrameSet &s) {
        ++sets;
        monotonic = monotonic && s.deviceTime > last_time;
        last_time = s.deviceTime;
    });
    parser.feed(stream.data(), stream.size());
    EXPECT_GT(sets, 1800u);
    EXPECT_TRUE(monotonic);
}

TEST(StreamParser, DataBeforeFirstTimestampIsDiscarded)
{
    std::vector<std::uint8_t> stream;
    Frame orphan;
    orphan.sensorId = 0;
    orphan.level = 100;
    push(stream, orphan);
    const auto rest = makeStream(3);
    stream.insert(stream.end(), rest.begin(), rest.end());

    unsigned sets = 0;
    StreamParser parser([&](const FrameSet &) { ++sets; });
    parser.feed(stream.data(), stream.size());
    EXPECT_EQ(sets, 2u);
    EXPECT_EQ(parser.resyncByteCount(), 2u);
}

TEST(StreamParser, FlushDropsPartialState)
{
    const auto stream = makeStream(5);
    unsigned sets = 0;
    StreamParser parser([&](const FrameSet &) { ++sets; });
    // Feed all but the last byte, flush, then feed a clean stream.
    parser.feed(stream.data(), stream.size() - 1);
    parser.flush();
    const auto more = makeStream(5, 2025);
    parser.feed(more.data(), more.size());
    EXPECT_GE(sets, 8u);
}

// The flush() contract pinned in the stream_parser.hpp header: a
// stop/start cycle never rewinds the lifetime counters, abandons
// pending state silently (droppedSetCount ticks only when the set
// held data, the discarded bytes are NOT resync bytes), and keeps
// the device-time axis monotonic across the restart.
TEST(StreamParser, FlushContractCountersAreLifetimeCumulative)
{
    std::vector<FrameSet> sets;
    StreamParser parser([&](const FrameSet &s) { sets.push_back(s); });

    // 5 sets, last byte withheld: a set with one valid channel plus
    // a pending first byte are in flight when the stream stops.
    const auto stream = makeStream(5);
    parser.feed(stream.data(), stream.size() - 1);
    const auto frame_sets = parser.frameSetCount();
    const auto resync_bytes = parser.resyncByteCount();
    ASSERT_EQ(frame_sets, 4u);
    ASSERT_EQ(resync_bytes, 0u);

    parser.flush();

    // Counters not reset; the in-flight set (held data) is counted
    // dropped; the two discarded bytes are not resync bytes.
    EXPECT_EQ(parser.frameSetCount(), frame_sets);
    EXPECT_EQ(parser.resyncByteCount(), resync_bytes);
    EXPECT_EQ(parser.droppedSetCount(), 1u);

    // The restarted stream parses cleanly from its first byte and
    // keeps accumulating the same counters.
    const auto more = makeStream(5, 2025);
    parser.feed(more.data(), more.size());
    EXPECT_EQ(parser.frameSetCount(), frame_sets + 4);
    EXPECT_EQ(parser.resyncByteCount(), 0u);
    EXPECT_EQ(parser.droppedSetCount(), 1u);
}

TEST(StreamParser, FlushWithoutPendingDataDropsNothing)
{
    std::vector<FrameSet> sets;
    StreamParser parser([&](const FrameSet &s) { sets.push_back(s); });

    // Stop right after a timestamp frame: a set is open but holds no
    // sensor data yet, so nothing is counted as dropped.
    const auto stream = makeStream(2);
    parser.feed(stream.data(), 8); // ts0 c v ts1
    parser.flush();
    EXPECT_EQ(parser.droppedSetCount(), 0u);

    // An idle parser may be flushed freely.
    parser.flush();
    parser.flush();
    EXPECT_EQ(parser.droppedSetCount(), 0u);
    EXPECT_EQ(parser.resyncByteCount(), 0u);
}

TEST(StreamParser, FlushPreservesUnwrapContext)
{
    std::vector<FrameSet> sets;
    StreamParser parser([&](const FrameSet &s) { sets.push_back(s); });

    const auto stream = makeStream(5, 25);
    parser.feed(stream.data(), stream.size() - 1);
    ASSERT_FALSE(sets.empty());
    const double time_before_stop = sets.back().deviceTime;

    parser.flush();

    // Restart within the 10-bit modulus window: the device-time axis
    // must continue monotonically, not restart from zero. The last
    // set delivered before the stop carries timestamp 175 us; the
    // first one after the restart carries 525 us.
    const auto more = makeStream(5, 525);
    parser.feed(more.data(), more.size());
    ASSERT_GT(sets.size(), 4u);
    const double time_after_restart = sets[4].deviceTime;
    EXPECT_GT(time_after_restart, time_before_stop);
    ASSERT_NEAR(time_after_restart - time_before_stop,
                (525 - 175) * 1e-6, 1e-12);
}

} // namespace

/** Injects synthetic frames that the wire encoding cannot carry. */
struct StreamParserTestPeer
{
    static void inject(StreamParser &parser, const firmware::Frame &f)
    {
        parser.handleFrame(f);
    }
};

namespace {

TEST(StreamParser, CountsAndDropsBadChannelFrames)
{
    // The 3-bit wire sensor-id field cannot encode an id >= 8 today,
    // so drive handleFrame() directly: the guard must survive a
    // future channel-count reduction, where stale firmware could
    // stream ids the host no longer has slots for.
    std::vector<FrameSet> sets;
    StreamParser parser([&](const FrameSet &s) { sets.push_back(s); });

    StreamParserTestPeer::inject(parser,
                                 makeTimestampFrame(/*micros=*/25));
    Frame good;
    good.sensorId = 2;
    good.level = 321;
    StreamParserTestPeer::inject(parser, good);
    Frame bad;
    bad.sensorId = firmware::kNumChannels; // first out-of-range id
    bad.level = 999;
    StreamParserTestPeer::inject(parser, bad);
    EXPECT_EQ(parser.badChannelFrameCount(), 1u);

    // Close the set: the good channel arrives, the bad one left no
    // trace in the level/valid arrays.
    StreamParserTestPeer::inject(parser, makeTimestampFrame(75));
    ASSERT_EQ(sets.size(), 1u);
    EXPECT_TRUE(sets[0].valid[2]);
    EXPECT_EQ(sets[0].level[2], 321);
    for (unsigned ch = 0; ch < firmware::kNumChannels; ++ch) {
        if (ch != 2)
            EXPECT_FALSE(sets[0].valid[ch]);
    }

    // flush() publishes the batched ps3_parser_bad_channel_total
    // delta; the lifetime tally is monotone and survives the flush.
    parser.flush();
    EXPECT_EQ(parser.badChannelFrameCount(), 1u);
}

} // namespace
} // namespace ps3::host
