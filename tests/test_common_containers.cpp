/**
 * @file
 * Unit tests for ring buffer, MPMC bounded queue, RNG, clocks, CSV
 * writer, units and logging.
 */

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/bounded_queue.hpp"
#include "common/csv_writer.hpp"
#include "common/errors.hpp"
#include "common/logging.hpp"
#include "common/ring_buffer.hpp"
#include "common/rng.hpp"
#include "common/time_source.hpp"
#include "common/units.hpp"

namespace ps3 {
namespace {

TEST(RingBuffer, RejectsZeroCapacity)
{
    EXPECT_THROW(RingBuffer<int>(0), UsageError);
}

TEST(RingBuffer, FifoOrder)
{
    RingBuffer<int> ring(4);
    ring.push(1);
    ring.push(2);
    ring.push(3);
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.pop(), 1);
    EXPECT_EQ(ring.pop(), 2);
    EXPECT_EQ(ring.pop(), 3);
    EXPECT_TRUE(ring.empty());
}

TEST(RingBuffer, OverwritesOldestWhenFull)
{
    RingBuffer<int> ring(3);
    for (int i = 1; i <= 5; ++i)
        ring.push(i);
    EXPECT_TRUE(ring.full());
    EXPECT_EQ(ring.at(0), 3); // oldest retained
    EXPECT_EQ(ring.at(1), 4);
    EXPECT_EQ(ring.at(2), 5);
    EXPECT_EQ(ring.back(), 5);
}

TEST(RingBuffer, ErrorsOnInvalidAccess)
{
    RingBuffer<int> ring(2);
    EXPECT_THROW(ring.pop(), UsageError);
    EXPECT_THROW(ring.back(), UsageError);
    EXPECT_THROW(ring.at(0), UsageError);
    ring.push(1);
    EXPECT_THROW(ring.at(1), UsageError);
}

TEST(RingBuffer, ClearResets)
{
    RingBuffer<int> ring(2);
    ring.push(1);
    ring.push(2);
    ring.clear();
    EXPECT_TRUE(ring.empty());
    ring.push(9);
    EXPECT_EQ(ring.at(0), 9);
}

/** Property: wrap-around indexing stays consistent for any capacity. */
class RingBufferProperty : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(RingBufferProperty, MatchesReferenceDeque)
{
    const std::size_t capacity = GetParam();
    RingBuffer<int> ring(capacity);
    std::vector<int> reference;
    Rng rng(capacity);
    for (int i = 0; i < 500; ++i) {
        if (rng.bernoulli(0.6) || reference.empty()) {
            ring.push(i);
            reference.push_back(i);
            if (reference.size() > capacity)
                reference.erase(reference.begin());
        } else {
            ASSERT_EQ(ring.pop(), reference.front());
            reference.erase(reference.begin());
        }
        ASSERT_EQ(ring.size(), reference.size());
        for (std::size_t k = 0; k < reference.size(); ++k)
            ASSERT_EQ(ring.at(k), reference[k]);
    }
}

INSTANTIATE_TEST_SUITE_P(Capacities, RingBufferProperty,
                         ::testing::Values(1u, 2u, 3u, 7u, 64u));

TEST(Rng, DeterministicPerSeed)
{
    Rng a(5), b(5), c(6);
    for (int i = 0; i < 100; ++i) {
        const double va = a.gaussian();
        EXPECT_DOUBLE_EQ(va, b.gaussian());
    }
    // A different seed diverges immediately with high probability.
    Rng a2(5);
    bool diverged = false;
    for (int i = 0; i < 10; ++i)
        diverged = diverged || a2.gaussian() != c.gaussian();
    EXPECT_TRUE(diverged);
}

TEST(Rng, UniformRanges)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-2.0, 3.0);
        EXPECT_GE(u, -2.0);
        EXPECT_LT(u, 3.0);
        const auto n = rng.uniformInt(10, 20);
        EXPECT_GE(n, 10u);
        EXPECT_LE(n, 20u);
    }
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(2);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(VirtualClock, AdvancesExactly)
{
    VirtualClock clock;
    EXPECT_DOUBLE_EQ(clock.now(), 0.0);
    clock.advanceMicros(50);
    EXPECT_DOUBLE_EQ(clock.now(), 50e-6);
    clock.advance(1.0);
    EXPECT_DOUBLE_EQ(clock.now(), 1.00005);
}

TEST(VirtualClock, NoDriftOverMillionsOfSteps)
{
    // 20 kHz for one simulated hour: 72 M advances of 50 us must
    // land exactly on 3600 s (integer picosecond arithmetic).
    VirtualClock clock;
    for (int i = 0; i < 72000; ++i)
        clock.advanceMicros(50000); // batched for test speed
    EXPECT_DOUBLE_EQ(clock.now(), 3600.0);
}

TEST(SteadyClock, MonotonicAndRoughlyRealTime)
{
    SteadyClock clock;
    const double t0 = clock.now();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const double t1 = clock.now();
    EXPECT_GT(t1, t0);
    EXPECT_GT(t1 - t0, 0.015);
    EXPECT_LT(t1 - t0, 1.0);
}

TEST(CsvWriter, WritesHeaderAndRows)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.header({"a", "b"});
    csv.row({1.5, 2.25});
    csv.rowText({"x", "y"});
    EXPECT_EQ(out.str(), "a,b\n1.5,2.25\nx,y\n");
    EXPECT_EQ(csv.rowCount(), 2u);
}

TEST(CsvWriter, CustomSeparatorAndPrecision)
{
    std::ostringstream out;
    CsvWriter csv(out, '\t', 3);
    csv.row({1.23456, 2.0});
    EXPECT_EQ(out.str(), "1.23\t2\n");
}

TEST(Units, Conversions)
{
    EXPECT_DOUBLE_EQ(units::milli(115.0), 0.115);
    EXPECT_DOUBLE_EQ(units::micro(50.0), 50e-6);
    EXPECT_DOUBLE_EQ(units::kilo(20.0), 20e3);
    EXPECT_DOUBLE_EQ(units::hzToPeriod(20e3), 50e-6);
    EXPECT_DOUBLE_EQ(units::secondsToMicros(1.5), 1.5e6);
    EXPECT_DOUBLE_EQ(units::microsToSeconds(50.0), 50e-6);
    EXPECT_EQ(units::kMiB, 1048576ull);
    EXPECT_DOUBLE_EQ(units::rmsToPeakToPeak(
                         units::peakToPeakToRms(4.2)),
                     4.2);
}

TEST(Logging, LevelFilterWorks)
{
    // The sink is stderr; here we only verify the level gate.
    const auto original = Log::level();
    Log::setLevel(LogLevel::Error);
    EXPECT_EQ(Log::level(), LogLevel::Error);
    logDebug() << "suppressed";
    logInfo() << "suppressed";
    Log::setLevel(original);
}

TEST(MpmcBoundedQueue, RoundsCapacityUpToPowerOfTwo)
{
    MpmcBoundedQueue<int> tiny(1);
    EXPECT_EQ(tiny.capacity(), 4u);
    MpmcBoundedQueue<int> queue(100);
    EXPECT_EQ(queue.capacity(), 128u);
}

TEST(MpmcBoundedQueue, FifoOrderAndFullEmptySignalling)
{
    MpmcBoundedQueue<int> queue(4);
    int out = 0;
    EXPECT_FALSE(queue.tryPop(out));
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(queue.tryPush(i));
    EXPECT_FALSE(queue.tryPush(99)); // full: value rejected, not lost
    EXPECT_EQ(queue.size(), 4u);
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(queue.tryPop(out));
        EXPECT_EQ(out, i);
    }
    EXPECT_FALSE(queue.tryPop(out));

    // Slots recycle: the queue works across many wrap-arounds.
    for (int i = 0; i < 1000; ++i) {
        ASSERT_TRUE(queue.tryPush(i));
        ASSERT_TRUE(queue.tryPop(out));
        EXPECT_EQ(out, i);
    }
}

TEST(MpmcBoundedQueue, MultiProducerContentionLosesNothing)
{
    // Four producers hammer a small queue while one consumer drains
    // it; every accepted push must come out exactly once. Encoding
    // producer+sequence in the value catches duplication and tearing.
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 20000;
    MpmcBoundedQueue<int> queue(64);

    std::atomic<int> accepted{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&queue, &accepted, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                if (queue.tryPush(p * kPerProducer + i))
                    accepted.fetch_add(1,
                                       std::memory_order_relaxed);
            }
        });
    }

    std::vector<int> seen(kProducers * kPerProducer, 0);
    std::atomic<bool> producing{true};
    std::thread consumer([&] {
        int value = 0;
        for (;;) {
            if (queue.tryPop(value)) {
                ++seen[static_cast<std::size_t>(value)];
            } else if (!producing.load(std::memory_order_acquire)) {
                // Producers are done and the queue read empty once
                // more: nothing can arrive after this point.
                if (!queue.tryPop(value))
                    break;
                ++seen[static_cast<std::size_t>(value)];
            }
        }
    });

    for (auto &thread : producers)
        thread.join();
    producing.store(false, std::memory_order_release);
    consumer.join();

    int total = 0;
    for (const int count : seen) {
        EXPECT_LE(count, 1); // never duplicated
        total += count;
    }
    EXPECT_EQ(total, accepted.load());
    EXPECT_GT(total, 0);
}

TEST(Errors, HierarchyIsCatchable)
{
    try {
        throw DeviceError("link down");
    } catch (const Error &e) {
        EXPECT_STREQ(e.what(), "link down");
    }
    EXPECT_THROW(throw UsageError("bad"), std::runtime_error);
    EXPECT_THROW(throw InternalError("bug"), Error);
}

} // namespace
} // namespace ps3
