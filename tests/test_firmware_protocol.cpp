/**
 * @file
 * Unit and property tests for the wire protocol: frame codec,
 * timestamp frames, and the configuration blob.
 */

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "firmware/protocol.hpp"

namespace ps3::firmware {
namespace {

TEST(FrameCodec, ByteRoleBits)
{
    Frame frame;
    frame.sensorId = 5;
    frame.level = 1023;
    frame.marker = true;
    const auto bytes = encodeFrame(frame);
    EXPECT_TRUE(isFirstByte(bytes[0]));
    EXPECT_FALSE(isFirstByte(bytes[1]));
}

TEST(FrameCodec, RejectsOutOfRangeFields)
{
    Frame bad_id;
    bad_id.sensorId = 8;
    EXPECT_THROW(encodeFrame(bad_id), InternalError);

    Frame bad_level;
    bad_level.level = 1024;
    EXPECT_THROW(encodeFrame(bad_level), InternalError);
}

TEST(FrameCodec, DecodeRejectsInconsistentRoles)
{
    EXPECT_THROW(decodeFrame(0x00, 0x00), InternalError);
    EXPECT_THROW(decodeFrame(0x80, 0x80), InternalError);
}

/** Property: encode/decode round-trips the full field space. */
class FrameRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, bool>>
{
};

TEST_P(FrameRoundTrip, AllLevelsRoundTrip)
{
    const auto [sensor_id, marker] = GetParam();
    for (unsigned level = 0; level < 1024; ++level) {
        Frame frame;
        frame.sensorId = static_cast<std::uint8_t>(sensor_id);
        frame.level = static_cast<std::uint16_t>(level);
        frame.marker = marker;
        const auto bytes = encodeFrame(frame);
        const Frame decoded = decodeFrame(bytes[0], bytes[1]);
        ASSERT_EQ(decoded, frame);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Fields, FrameRoundTrip,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Bool()));

TEST(TimestampFrame, UsesReservedEncoding)
{
    const Frame ts = makeTimestampFrame(123456);
    EXPECT_TRUE(ts.isTimestamp());
    EXPECT_EQ(ts.sensorId, kTimestampId);
    EXPECT_TRUE(ts.marker);
    EXPECT_EQ(ts.level, 123456 % kTimestampModulus);

    // A marker on sensor 0 is NOT a timestamp.
    Frame data;
    data.sensorId = 0;
    data.marker = true;
    EXPECT_FALSE(data.isTimestamp());
}

TEST(TimestampFrame, SurvivesTheCodec)
{
    for (std::uint64_t micros : {0ull, 50ull, 1023ull, 1024ull,
                                 987654321ull}) {
        const auto bytes = encodeFrame(makeTimestampFrame(micros));
        const Frame decoded = decodeFrame(bytes[0], bytes[1]);
        EXPECT_TRUE(decoded.isTimestamp());
        EXPECT_EQ(decoded.level, micros % kTimestampModulus);
    }
}

TEST(ConfigBlob, RoundTripsAllFields)
{
    DeviceConfig config{};
    config[0].name = "12V-10A";
    config[0].vref = 1.6543f;
    config[0].slope = 0.132f;
    config[0].inUse = true;
    config[1].name = "12V-10A";
    config[1].slope = 0.2004f;
    config[1].inUse = true;
    config[6].name = "spare";
    config[6].vref = -0.5f;
    config[6].inUse = false;

    const auto blob = serializeConfig(config);
    EXPECT_EQ(blob.size(), kConfigBlobSize);
    const auto restored = deserializeConfig(blob.data(), blob.size());
    EXPECT_EQ(restored, config);
}

TEST(ConfigBlob, TruncatesOverlongNames)
{
    DeviceConfig config{};
    config[0].name = "this-name-is-way-longer-than-fifteen-chars";
    const auto blob = serializeConfig(config);
    const auto restored = deserializeConfig(blob.data(), blob.size());
    EXPECT_EQ(restored[0].name.size(), 15u);
    EXPECT_EQ(restored[0].name, "this-name-is-wa");
}

TEST(ConfigBlob, DetectsCorruption)
{
    DeviceConfig config{};
    config[0].name = "x";
    auto blob = serializeConfig(config);

    auto corrupted = blob;
    corrupted[10] ^= 0xFF;
    EXPECT_THROW(deserializeConfig(corrupted.data(),
                                   corrupted.size()),
                 DeviceError);

    auto bad_magic = blob;
    bad_magic[0] = 'X';
    EXPECT_THROW(deserializeConfig(bad_magic.data(),
                                   bad_magic.size()),
                 DeviceError);

    EXPECT_THROW(deserializeConfig(blob.data(), blob.size() - 1),
                 DeviceError);
}

TEST(ConfigBlob, ChecksumCoversEveryByte)
{
    DeviceConfig config{};
    config[3].name = "probe";
    config[3].vref = 1.0f;
    auto blob = serializeConfig(config);
    // Flipping any single payload byte must be detected.
    for (std::size_t i = 0; i + 1 < blob.size(); i += 17) {
        auto copy = blob;
        copy[i] ^= 0x01;
        EXPECT_THROW(deserializeConfig(copy.data(), copy.size()),
                     DeviceError)
            << "byte " << i;
    }
}

TEST(Protocol, ChannelConventions)
{
    EXPECT_TRUE(isCurrentChannel(0));
    EXPECT_FALSE(isCurrentChannel(1));
    EXPECT_EQ(pairOfChannel(0), 0u);
    EXPECT_EQ(pairOfChannel(7), 3u);
    EXPECT_EQ(kNumChannels, kPairCount * 2);
    EXPECT_NEAR(kSampleRateHz, 20e3, 1e-9);
    EXPECT_NEAR(kSampleInterval * kSampleRateHz, 1.0, 1e-12);
}

TEST(Protocol, VersionStringIsStable)
{
    EXPECT_FALSE(firmwareVersion().empty());
    EXPECT_LT(firmwareVersion().size(), 256u);
}

} // namespace
} // namespace ps3::firmware
