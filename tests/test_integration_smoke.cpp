/**
 * @file
 * End-to-end smoke tests: electronic load -> sensor physics ->
 * firmware -> emulated link -> host library. Validates the headline
 * numbers the rest of the suite depends on (mean accuracy, noise
 * magnitude, sampling cadence).
 */

#include <gtest/gtest.h>

#include "analog/sensor_module_spec.hpp"
#include "common/statistics.hpp"
#include "host/sim_setup.hpp"
#include "host/state.hpp"

namespace ps3 {
namespace {

using host::rigs::RigOptions;

TEST(IntegrationSmoke, MeasuresConstantLoadAccurately)
{
    // 8 A at 12 V = 96 W; a calibrated 12 V / 10 A module must read
    // it within the paper's worst-case budget.
    auto rig = host::rigs::labBench(analog::modules::slot12V10A(),
                                    12.0, 8.0);
    auto sensor = rig.connect();

    RunningStatistics power;
    const auto token = sensor->addSampleListener(
        [&](const host::Sample &s) { power.add(s.totalPower()); });
    ASSERT_TRUE(sensor->waitForSamples(20001));
    sensor->removeSampleListener(token);

    EXPECT_GE(power.count(), 20000u);
    // True power is 8 A at 11.92 V (supply droop over its 10 mOhm
    // output resistance): ~95.4 W.
    EXPECT_NEAR(power.mean(), 95.4, 1.0);
    // 20 kHz sample noise: paper Table II reports ~0.72 W std.
    EXPECT_NEAR(power.stddev(), 0.72, 0.25);
}

TEST(IntegrationSmoke, SampleCadenceIs20kHz)
{
    auto rig = host::rigs::labBench(analog::modules::slot12V10A(),
                                    12.0, 2.0);
    auto sensor = rig.connect();

    std::vector<double> times;
    const auto token = sensor->addSampleListener(
        [&](const host::Sample &s) { times.push_back(s.time); });
    ASSERT_TRUE(sensor->waitForSamples(1000));
    sensor->removeSampleListener(token);

    ASSERT_GE(times.size(), 1000u);
    for (std::size_t i = 1; i < 1000; ++i)
        EXPECT_NEAR(times[i] - times[i - 1], 50e-6, 1e-9);
}

TEST(IntegrationSmoke, IntervalModeEnergyMatchesPower)
{
    auto rig = host::rigs::labBench(analog::modules::slot12V10A(),
                                    12.0, 5.0);
    auto sensor = rig.connect();

    const auto first = sensor->read();
    ASSERT_TRUE(sensor->waitForSamples(40000)); // 2 s of virtual time
    const auto second = sensor->read();

    const double dt = host::seconds(first, second);
    EXPECT_GT(dt, 1.9);
    // 5 A * 12 V = 60 W.
    EXPECT_NEAR(host::Watts(first, second), 60.0, 1.0);
    EXPECT_NEAR(host::Joules(first, second), 60.0 * dt, 1.0 * dt);
}

TEST(IntegrationSmoke, MarkersRoundTrip)
{
    auto rig = host::rigs::labBench(analog::modules::slot12V10A(),
                                    12.0, 1.0);
    auto sensor = rig.connect();

    std::vector<char> markers;
    const auto token = sensor->addSampleListener(
        [&](const host::Sample &s) {
            if (s.marker)
                markers.push_back(s.markerChar);
        });

    // The flagged frame set can trail the command by up to one read
    // chunk of buffered samples; wait comfortably past it.
    sensor->mark('a');
    ASSERT_TRUE(sensor->waitForSamples(2000));
    sensor->mark('b');
    ASSERT_TRUE(sensor->waitForSamples(2000));
    sensor->removeSampleListener(token);

    ASSERT_EQ(markers.size(), 2u);
    EXPECT_EQ(markers[0], 'a');
    EXPECT_EQ(markers[1], 'b');
}

TEST(IntegrationSmoke, FirmwareVersionQueryWorksMidStream)
{
    auto rig = host::rigs::labBench(analog::modules::slot12V10A(),
                                    12.0, 1.0);
    auto sensor = rig.connect();
    ASSERT_TRUE(sensor->waitForSamples(100));

    EXPECT_EQ(sensor->firmwareVersion(),
              firmware::firmwareVersion());

    // Streaming resumes and time stays continuous.
    const auto before = sensor->read();
    ASSERT_TRUE(sensor->waitForSamples(100));
    const auto after = sensor->read();
    EXPECT_GT(after.timeAtRead, before.timeAtRead);
    EXPECT_LT(host::seconds(before, after), 1.0);
}

} // namespace
} // namespace ps3
