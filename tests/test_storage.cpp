/**
 * @file
 * Unit and property tests for the SSD simulator: FTL invariants,
 * read parallelism model, write/GC steady state, and trace export.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "common/statistics.hpp"
#include "storage/ssd_simulator.hpp"

namespace ps3::storage {
namespace {

/** A scaled-down drive keeps FTL tests fast. */
SsdSpec
smallSpec()
{
    SsdSpec spec = SsdSpec::samsung980Pro();
    spec.logicalCapacity = 4ull * units::kGiB;
    return spec;
}

TEST(SsdSpecTest, Defaults)
{
    const auto spec = SsdSpec::samsung980Pro();
    EXPECT_EQ(spec.totalDies(), 16u);
    EXPECT_GT(spec.overProvisioning, 0.0);
    EXPECT_GT(spec.interfaceBandwidth, 1e9);
}

TEST(SsdSimulatorTest, RejectsTinyCapacity)
{
    SsdSpec spec = smallSpec();
    spec.logicalCapacity = units::kMiB;
    EXPECT_THROW(SsdSimulator sim(spec), UsageError);
}

TEST(SsdSimulatorTest, FormatResetsState)
{
    SsdSimulator ssd(smallSpec(), 1);
    EXPECT_DOUBLE_EQ(ssd.freeBlockFraction(), 1.0);
    EXPECT_DOUBLE_EQ(ssd.writeAmplification(), 1.0);
    ssd.preconditionSequential();
    EXPECT_LT(ssd.freeBlockFraction(), 0.2);
    ssd.format();
    EXPECT_DOUBLE_EQ(ssd.freeBlockFraction(), 1.0);
}

TEST(SsdSimulatorTest, PreconditionLeavesOnlyTheSparePool)
{
    const auto spec = smallSpec();
    SsdSimulator ssd(spec, 1);
    ssd.preconditionSequential();
    // Free fraction equals the over-provisioning share of the
    // physical space.
    const double expected =
        spec.overProvisioning / (1.0 + spec.overProvisioning);
    EXPECT_NEAR(ssd.freeBlockFraction(), expected, 0.01);
    EXPECT_DOUBLE_EQ(ssd.writeAmplification(), 1.0);
}

TEST(SsdSimulatorTest, WorkloadValidation)
{
    SsdSimulator ssd(smallSpec(), 1);
    EXPECT_THROW(ssd.runRandomRead(1.0, 0, 8), UsageError);
    EXPECT_THROW(ssd.runRandomRead(1.0, 4096, 0), UsageError);
    EXPECT_THROW(ssd.runRandomRead(-1.0, 4096, 8), UsageError);
    EXPECT_THROW(ssd.runRandomWrite(1.0, 0, 8), UsageError);
}

TEST(SsdSimulatorTest, ReadBandwidthGrowsWithRequestSize)
{
    SsdSimulator ssd(smallSpec(), 2);
    double last_bw = 0.0;
    double last_power = 0.0;
    for (std::uint64_t kib : {1, 4, 16}) {
        const auto samples =
            ssd.runRandomRead(0.5, kib * units::kKiB, 128);
        ASSERT_FALSE(samples.empty());
        RunningStatistics bw, power;
        for (const auto &s : samples) {
            bw.add(s.readBandwidth);
            power.add(s.powerWatts);
        }
        EXPECT_GT(bw.mean(), last_bw);
        EXPECT_GT(power.mean(), last_power);
        last_bw = bw.mean();
        last_power = power.mean();
    }
}

TEST(SsdSimulatorTest, ReadCapsAtInterfaceAndDiePower)
{
    const auto spec = smallSpec();
    SsdSimulator ssd(spec, 3);
    const auto samples =
        ssd.runRandomRead(0.5, units::kMiB, 256);
    for (const auto &s : samples) {
        EXPECT_LE(s.readBandwidth,
                  spec.interfaceBandwidth * 1.02);
        EXPECT_LE(s.powerWatts,
                  spec.idleWatts + spec.controllerWatts
                      + spec.totalDies() * spec.dieReadWatts + 0.2);
        EXPECT_DOUBLE_EQ(s.writeBandwidth, 0.0);
    }
}

TEST(SsdSimulatorTest, ReadsDoNotMutateTheFtl)
{
    SsdSimulator ssd(smallSpec(), 4);
    ssd.preconditionSequential();
    const double free_before = ssd.freeBlockFraction();
    ssd.runRandomRead(1.0, 64 * units::kKiB, 64);
    EXPECT_DOUBLE_EQ(ssd.freeBlockFraction(), free_before);
    EXPECT_DOUBLE_EQ(ssd.writeAmplification(), 1.0);
}

TEST(SsdSimulatorTest, SteadyRandomWriteDevelopsGcAndWa)
{
    SsdSimulator ssd(smallSpec(), 5);
    ssd.preconditionSequential();
    const auto samples =
        ssd.runRandomWrite(120.0, 4 * units::kKiB, 32, 0.5);
    ASSERT_GT(samples.size(), 100u);

    // GC must have become active at some point.
    double max_gc = 0.0;
    for (const auto &s : samples)
        max_gc = std::max(max_gc, s.gcActivity);
    EXPECT_GT(max_gc, 0.3);

    // Write amplification settles into a plausible band for ~12%
    // over-provisioning under uniform random writes.
    const double wa = samples.back().writeAmplification;
    EXPECT_GT(wa, 1.5);
    EXPECT_LT(wa, 8.0);

    // Free pool stays within the hysteresis band (never exhausted).
    for (const auto &s : samples) {
        EXPECT_GE(s.freeBlockFraction, 0.0);
        EXPECT_LE(s.freeBlockFraction, 0.2);
    }
}

TEST(SsdSimulatorTest, BandwidthCollapsesPowerStaysFlat)
{
    SsdSimulator ssd(smallSpec(), 6);
    ssd.preconditionSequential();
    // Fine early resolution: on the scaled-down drive the free pool
    // drains within a fraction of a second.
    const auto samples =
        ssd.runRandomWrite(120.0, 4 * units::kKiB, 32, 0.1);

    RunningStatistics early_bw, late_bw, late_power;
    for (const auto &s : samples) {
        if (s.time < 0.25)
            early_bw.add(s.writeBandwidth);
        if (s.time > 60.0) {
            late_bw.add(s.writeBandwidth);
            late_power.add(s.powerWatts);
        }
    }
    EXPECT_LT(late_bw.mean(), early_bw.mean() * 0.6);
    EXPECT_NEAR(late_power.mean(), 5.0, 1.0);
    EXPECT_LT(late_power.stddev() / late_power.mean(), 0.1);
}

TEST(SsdSimulatorTest, DeterministicPerSeed)
{
    SsdSimulator a(smallSpec(), 42), b(smallSpec(), 42);
    a.preconditionSequential();
    b.preconditionSequential();
    const auto sa = a.runRandomWrite(10.0, 4 * units::kKiB, 32, 0.5);
    const auto sb = b.runRandomWrite(10.0, 4 * units::kKiB, 32, 0.5);
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i) {
        EXPECT_DOUBLE_EQ(sa[i].writeBandwidth, sb[i].writeBandwidth);
        EXPECT_DOUBLE_EQ(sa[i].powerWatts, sb[i].powerWatts);
    }
}

TEST(SsdSimulatorTest, SequentialReadBeatsRandomAtSameSize)
{
    SsdSimulator ssd(smallSpec(), 8);
    const std::uint64_t req = 4 * units::kKiB;
    const auto seq = ssd.runSequentialRead(0.5, req, 64);
    const auto rnd = ssd.runRandomRead(0.5, req, 64);
    RunningStatistics seq_bw, rnd_bw;
    for (const auto &s : seq)
        seq_bw.add(s.readBandwidth);
    for (const auto &s : rnd)
        rnd_bw.add(s.readBandwidth);
    // No read-unit amplification or IOPS penalty sequentially.
    EXPECT_GT(seq_bw.mean(), rnd_bw.mean() * 1.5);
    EXPECT_THROW(ssd.runSequentialRead(1.0, 0, 8), UsageError);
}

TEST(SsdSimulatorTest, MixedWorkloadSharesTheBudget)
{
    SsdSimulator ssd(smallSpec(), 9);
    ssd.preconditionSequential();
    const auto mixed = ssd.runMixedReadWrite(
        30.0, 4 * units::kKiB, 32, /*read_fraction=*/0.7, 0.5);
    ASSERT_FALSE(mixed.empty());

    RunningStatistics reads, writes, power;
    for (const auto &s : mixed) {
        reads.add(s.readBandwidth);
        writes.add(s.writeBandwidth);
        power.add(s.powerWatts);
    }
    // Both directions flow. 70% of *requests* are 4 KiB reads but
    // each write programs a full 16 KiB page, so the byte split is
    // lower than the request split.
    EXPECT_GT(reads.mean(), 0.0);
    EXPECT_GT(writes.mean(), 0.0);
    EXPECT_GT(reads.mean() / (reads.mean() + writes.mean()), 0.25);
    // Power stays in the active-device class.
    EXPECT_GT(power.mean(), 3.0);
    EXPECT_LT(power.mean(), 7.5);
    // Writes still drive GC on the preconditioned drive.
    double max_gc = 0.0;
    for (const auto &s : mixed)
        max_gc = std::max(max_gc, s.gcActivity);
    EXPECT_GT(max_gc, 0.1);
}

TEST(SsdSimulatorTest, MixedWorkloadValidation)
{
    SsdSimulator ssd(smallSpec(), 10);
    EXPECT_THROW(ssd.runMixedReadWrite(1.0, 4096, 8, -0.1),
                 UsageError);
    EXPECT_THROW(ssd.runMixedReadWrite(1.0, 4096, 8, 1.5),
                 UsageError);
    EXPECT_THROW(ssd.runMixedReadWrite(1.0, 0, 8, 0.5), UsageError);
}

TEST(ToPowerTrace, PrependsIdleAnchor)
{
    std::vector<StorageSample> samples(2);
    samples[0].time = 1.0;
    samples[0].powerWatts = 4.0;
    samples[1].time = 2.0;
    samples[1].powerWatts = 5.0;
    const auto trace = toPowerTrace(samples, 10.0, 1.5);
    ASSERT_EQ(trace.size(), 3u);
    EXPECT_DOUBLE_EQ(trace[0].time, 10.0);
    EXPECT_DOUBLE_EQ(trace[0].power, 1.5);
    EXPECT_DOUBLE_EQ(trace[1].time, 11.0);
    EXPECT_DOUBLE_EQ(trace[2].power, 5.0);
}

} // namespace
} // namespace ps3::storage
