/**
 * @file
 * Tests for the display pipeline: 5x7 font, pre-computed glyph
 * cache, framebuffer rendering, and the change-only DMA model
 * (paper Sec. III-B2).
 */

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "firmware/display.hpp"
#include "firmware/font5x7.hpp"

namespace ps3::firmware {
namespace {

TEST(Font5x7, KnownAndUnknownGlyphs)
{
    EXPECT_TRUE(glyphKnown('0'));
    EXPECT_TRUE(glyphKnown('W'));
    EXPECT_TRUE(glyphKnown(' '));
    EXPECT_FALSE(glyphKnown('Z'));
    EXPECT_FALSE(glyphKnown('\n'));

    // Unknown characters render blank.
    const auto blank = glyphColumns('Z');
    for (const auto column : blank)
        EXPECT_EQ(column, 0);
}

TEST(Font5x7, DigitEightHasTheDensestPattern)
{
    // '8' lights both loops; '.' is a tiny dot. Pixel-count sanity.
    auto count = [](char c) {
        unsigned lit = 0;
        for (const auto column : glyphColumns(c)) {
            for (unsigned bit = 0; bit < kGlyphHeight; ++bit)
                lit += (column >> bit) & 1u;
        }
        return lit;
    };
    EXPECT_GT(count('8'), count('1'));
    EXPECT_GT(count('1'), count('.'));
    EXPECT_EQ(count(' '), 0u);
}

TEST(GlyphCacheTest, RendersOnceServesMany)
{
    GlyphCache cache;
    const auto &first = cache.get('7', 2);
    EXPECT_EQ(first.width, kGlyphWidth * 2);
    EXPECT_EQ(first.height, kGlyphHeight * 2);
    for (int i = 0; i < 100; ++i)
        cache.get('7', 2);
    EXPECT_EQ(cache.renderedCount(), 1u);
    EXPECT_EQ(cache.lookupCount(), 101u);

    // A different scale is a different pre-rendered glyph.
    cache.get('7', 3);
    EXPECT_EQ(cache.renderedCount(), 2u);
}

TEST(GlyphCacheTest, ScalingPreservesShape)
{
    GlyphCache cache;
    const auto &small = cache.get('4', 1);
    const auto &big = cache.get('4', 3);
    // Every small pixel maps to a fully lit 3x3 block.
    for (unsigned y = 0; y < small.height; ++y) {
        for (unsigned x = 0; x < small.width; ++x) {
            for (unsigned dy = 0; dy < 3; ++dy) {
                for (unsigned dx = 0; dx < 3; ++dx) {
                    ASSERT_EQ(big.pixel(x * 3 + dx, y * 3 + dy),
                              small.pixel(x, y));
                }
            }
        }
    }
}

TEST(DisplayRendererTest, DrawsTextIntoTheFramebuffer)
{
    DisplayRenderer renderer;
    EXPECT_EQ(renderer.litPixelCount(), 0u);
    renderer.render({"12.34 W"});
    EXPECT_GT(renderer.litPixelCount(), 100u);
    EXPECT_THROW(renderer.pixel(DisplayRenderer::kWidth, 0),
                 UsageError);
}

TEST(DisplayRendererTest, BigFontOnTheFirstLineOnly)
{
    DisplayRenderer a, b;
    a.render({"8"});
    b.render({"", "8"});
    // The first-line glyph is scaled kBigScale x: 9x the pixels.
    EXPECT_EQ(a.litPixelCount(),
              b.litPixelCount() * DisplayRenderer::kBigScale
                  * DisplayRenderer::kBigScale);
}

TEST(DisplayRendererTest, DmaOnlyOnContentChange)
{
    DisplayRenderer renderer;
    renderer.render({"10.00 W"});
    const auto after_first = renderer.dmaBytesTransferred();
    EXPECT_EQ(after_first,
              static_cast<std::uint64_t>(DisplayRenderer::kWidth)
                  * DisplayRenderer::kHeight * 2);

    // Same content: no new transfer.
    renderer.render({"10.00 W"});
    EXPECT_EQ(renderer.dmaBytesTransferred(), after_first);
    EXPECT_EQ(renderer.refreshCount(), 1u);

    // Changed content: one more transfer.
    renderer.render({"11.00 W"});
    EXPECT_EQ(renderer.dmaBytesTransferred(), 2 * after_first);
    EXPECT_EQ(renderer.refreshCount(), 2u);
}

TEST(DisplayRendererTest, GlyphCacheWarmsUpThenStopsRendering)
{
    DisplayRenderer renderer;
    renderer.render({"80.88 W", "0: 1.000V 2.000A 2.000W"});
    const auto rendered = renderer.glyphs().renderedCount();
    EXPECT_GT(rendered, 0u);
    // Re-rendering content drawn from the same character set hits
    // the cache only.
    renderer.render({"80.08 W", "0: 2.100V 0.200A 0.020W"});
    EXPECT_EQ(renderer.glyphs().renderedCount(), rendered);
}

TEST(DisplayModelTest, UpdateDrivesTheRenderer)
{
    DisplayModel display;
    std::array<PairReading, kPairCount> pairs{};
    pairs[0] = {true, 12.0, 5.0};
    display.update(pairs);
    EXPECT_GT(display.renderer().litPixelCount(), 100u);
    EXPECT_EQ(display.renderer().refreshCount(), 1u);
    EXPECT_NEAR(display.totalPower(), 60.0, 1e-9);

    // Identical readings do not re-transfer the panel.
    display.update(pairs);
    EXPECT_EQ(display.renderer().refreshCount(), 1u);
}

} // namespace
} // namespace ps3::firmware
