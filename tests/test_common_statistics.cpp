/**
 * @file
 * Unit and property tests for the statistics utilities.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"

namespace ps3 {
namespace {

TEST(RunningStatistics, EmptyAccumulatorIsNeutral)
{
    RunningStatistics stats;
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
    EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(stats.peakToPeak(), 0.0);
}

TEST(RunningStatistics, SingleValue)
{
    RunningStatistics stats;
    stats.add(42.0);
    EXPECT_EQ(stats.count(), 1u);
    EXPECT_DOUBLE_EQ(stats.mean(), 42.0);
    EXPECT_DOUBLE_EQ(stats.min(), 42.0);
    EXPECT_DOUBLE_EQ(stats.max(), 42.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStatistics, KnownSequence)
{
    RunningStatistics stats;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stats.add(v);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 4.0); // population variance
    EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
    EXPECT_DOUBLE_EQ(stats.peakToPeak(), 7.0);
}

TEST(RunningStatistics, NumericallyStableForLargeOffsets)
{
    // Welford must survive a large common offset where the naive
    // sum-of-squares catastrophically cancels.
    RunningStatistics stats;
    const double offset = 1e12;
    for (int i = 0; i < 1000; ++i)
        stats.add(offset + (i % 2 == 0 ? 1.0 : -1.0));
    EXPECT_NEAR(stats.variance(), 1.0, 1e-6);
}

TEST(RunningStatistics, ResetClearsEverything)
{
    RunningStatistics stats;
    stats.add(1.0);
    stats.add(2.0);
    stats.reset();
    EXPECT_EQ(stats.count(), 0u);
    stats.add(5.0);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    EXPECT_DOUBLE_EQ(stats.min(), 5.0);
}

TEST(RunningStatistics, MergeMatchesSequential)
{
    Rng rng(99);
    RunningStatistics sequential, left, right;
    for (int i = 0; i < 500; ++i) {
        const double v = rng.gaussian(3.0, 2.0);
        sequential.add(v);
        (i < 200 ? left : right).add(v);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), sequential.count());
    EXPECT_NEAR(left.mean(), sequential.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), sequential.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), sequential.min());
    EXPECT_DOUBLE_EQ(left.max(), sequential.max());
}

TEST(RunningStatistics, MergeWithEmptySides)
{
    RunningStatistics a, b;
    a.add(1.0);
    a.add(3.0);
    RunningStatistics a_copy = a;
    a.merge(b); // empty right side: no-op
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    b.merge(a_copy); // empty left side: adopt
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStatistics, GaussianMomentsConverge)
{
    Rng rng(7);
    RunningStatistics stats;
    for (int i = 0; i < 200000; ++i)
        stats.add(rng.gaussian(10.0, 0.5));
    EXPECT_NEAR(stats.mean(), 10.0, 0.01);
    EXPECT_NEAR(stats.stddev(), 0.5, 0.01);
}

TEST(BlockAverager, RejectsZeroBlock)
{
    EXPECT_THROW(BlockAverager(0), UsageError);
}

TEST(BlockAverager, EmitsAverageEveryBlock)
{
    BlockAverager averager(3);
    EXPECT_FALSE(averager.add(1.0));
    EXPECT_FALSE(averager.add(2.0));
    EXPECT_TRUE(averager.add(6.0));
    EXPECT_DOUBLE_EQ(averager.take(), 3.0);
    EXPECT_FALSE(averager.add(10.0));
}

TEST(BlockAverager, TakeWithoutCompletedBlockThrows)
{
    BlockAverager averager(2);
    EXPECT_THROW(averager.take(), UsageError);
    averager.add(1.0);
    EXPECT_THROW(averager.take(), UsageError);
}

TEST(BlockAverager, ReduceDropsTrailingPartialBlock)
{
    const std::vector<double> data{1, 2, 3, 4, 5, 6, 7};
    const auto reduced = BlockAverager::reduce(data, 3);
    ASSERT_EQ(reduced.size(), 2u);
    EXPECT_DOUBLE_EQ(reduced[0], 2.0);
    EXPECT_DOUBLE_EQ(reduced[1], 5.0);
}

/** Property: block averaging preserves the overall mean. */
class BlockAveragerProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BlockAveragerProperty, PreservesMeanAndShrinksVariance)
{
    const unsigned block = GetParam();
    Rng rng(block * 13 + 1);
    std::vector<double> data;
    const std::size_t n = 20000 - 20000 % block;
    data.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        data.push_back(rng.gaussian(5.0, 1.0));

    const auto reduced = BlockAverager::reduce(data, block);
    ASSERT_EQ(reduced.size(), n / block);

    RunningStatistics raw, avg;
    for (double v : data)
        raw.add(v);
    for (double v : reduced)
        avg.add(v);
    EXPECT_NEAR(avg.mean(), raw.mean(), 1e-9);

    if (block > 1) {
        // White noise: variance shrinks by the block size.
        EXPECT_NEAR(avg.variance() * block, raw.variance(),
                    0.25 * raw.variance());
    }
}

INSTANTIATE_TEST_SUITE_P(Blocks, BlockAveragerProperty,
                         ::testing::Values(1u, 2u, 4u, 5u, 8u, 20u,
                                           40u, 100u));

TEST(Percentile, BasicValues)
{
    std::vector<double> data{4, 1, 3, 2, 5};
    EXPECT_DOUBLE_EQ(percentile(data, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(data, 50), 3.0);
    EXPECT_DOUBLE_EQ(percentile(data, 100), 5.0);
    EXPECT_DOUBLE_EQ(percentile(data, 25), 2.0);
    EXPECT_DOUBLE_EQ(percentile(data, 12.5), 1.5); // interpolated
}

TEST(Percentile, SingleElementAndErrors)
{
    EXPECT_DOUBLE_EQ(percentile({7.0}, 99), 7.0);
    EXPECT_THROW(percentile({}, 50), UsageError);
    EXPECT_THROW(percentile({1.0}, -1), UsageError);
    EXPECT_THROW(percentile({1.0}, 101), UsageError);
}

} // namespace
} // namespace ps3
