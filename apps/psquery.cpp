/**
 * @file
 * psquery — windowed energy queries over recorded dump files.
 *
 *   psquery <file> [--from T] [--to T] [--tier raw|1kHz|10Hz|1Hz]
 *           [--buckets] [--csv out.csv] [--stats=FORMAT]
 *
 * <file> may be a text dump or a binary "*.ps3b" dump (format v2,
 * auto-detected). psquery answers the question psdump's whole-file
 * statistics cannot: "how much energy went into [from, to), and what
 * were the power extremes in that window?" — the offline counterpart
 * of the live History::window() API (docs/HISTORY.md).
 *
 * --from T / --to T   window bounds in device seconds (defaults:
 *                     the whole file)
 * --tier NAME         re-bucket the file at an aggregate tier
 *                     (1kHz, 10Hz, 1Hz) before querying; "raw"
 *                     (default) integrates sample by sample
 * --buckets           with an aggregate tier: list every bucket in
 *                     the window (start, samples, min/max/mean, J)
 * --csv FILE          with an aggregate tier: export the window's
 *                     buckets as CSV
 * --stats=FORMAT      observability snapshot (table/csv/prom), see
 *                     docs/OBSERVABILITY.md
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string>

#include <iostream>
#include <optional>

#include "common/csv_writer.hpp"
#include "common/errors.hpp"
#include "host/dump_reader.hpp"
#include "host/history.hpp"
#include "obs/exposition.hpp"

namespace {

/** Aggregate the buckets intersecting [from, to). */
ps3::host::WindowStats
windowFromBuckets(const std::vector<ps3::host::HistoryBucket> &buckets,
                  double from, double to, double rate)
{
    ps3::host::WindowStats stats;
    double sum = 0.0;
    for (const auto &bucket : buckets) {
        if (bucket.endTime <= from || bucket.startTime >= to)
            continue;
        stats.energyJoules += bucket.energyJoules;
        stats.minPower = std::min(stats.minPower, bucket.minPower);
        stats.maxPower = std::max(stats.maxPower, bucket.maxPower);
        sum += bucket.sumPower;
        stats.samples += bucket.samples;
        ++stats.buckets;
    }
    if (stats.samples > 0) {
        stats.meanPower =
            sum / static_cast<double>(stats.samples);
        if (rate > 0.0)
            stats.coverageSeconds =
                static_cast<double>(stats.samples) / rate;
    }
    return stats;
}

} // namespace

int
main(int argc, char **argv)
try {
    using namespace ps3;

    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: psquery <file> [--from T] [--to T] "
                     "[--tier raw|1kHz|10Hz|1Hz] [--buckets] "
                     "[--csv out]\n");
        return 2;
    }
    const std::string path = argv[1];

    double from = -std::numeric_limits<double>::infinity();
    double to = std::numeric_limits<double>::infinity();
    auto tier = host::Tier::Raw;
    bool list_buckets = false;
    std::string csv_path;
    std::optional<obs::Format> obs_format;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                throw UsageError(arg + " needs an argument");
            return argv[++i];
        };
        if (arg == "--from") {
            from = std::stod(next());
        } else if (arg == "--to") {
            to = std::stod(next());
        } else if (arg == "--tier") {
            const std::string name = next();
            const auto parsed = host::tierFromString(name);
            if (!parsed) {
                throw UsageError("--tier must be raw, 1kHz, 10Hz "
                                 "or 1Hz (got " + name + ")");
            }
            tier = *parsed;
        } else if (arg == "--buckets") {
            list_buckets = true;
        } else if (arg == "--csv") {
            csv_path = next();
        } else if (arg.rfind("--stats=", 0) == 0) {
            obs_format = obs::parseFormat(arg.substr(8));
            if (!obs_format) {
                throw UsageError(
                    "--stats format must be table, csv or prom");
            }
        } else {
            throw UsageError("unknown option: " + arg);
        }
    }
    if (to <= from)
        throw UsageError("--to must be greater than --from");
    if ((list_buckets || !csv_path.empty())
        && tier == host::Tier::Raw) {
        throw UsageError("--buckets/--csv need an aggregate --tier "
                         "(1kHz, 10Hz or 1Hz)");
    }

    const auto file = host::DumpFile::load(path);
    std::printf("%s: %zu samples, %zu gaps, %.0f Hz\n", path.c_str(),
                file.samples().size(), file.gaps().size(),
                file.sampleRateHz());

    host::WindowStats stats;
    std::vector<host::HistoryBucket> buckets;
    if (tier == host::Tier::Raw) {
        stats = host::windowFromDump(file, from, to);
    } else {
        buckets = host::bucketsFromDump(file, tier);
        stats = windowFromBuckets(buckets, from, to,
                                  file.sampleRateHz());
    }

    if (stats.samples == 0) {
        std::printf("window: no samples in [%g, %g)\n", from, to);
    } else {
        std::printf("window: %llu samples",
                    static_cast<unsigned long long>(stats.samples));
        if (tier != host::Tier::Raw) {
            std::printf(" in %llu %s buckets",
                        static_cast<unsigned long long>(
                            stats.buckets),
                        host::tierName(tier).c_str());
        }
        std::printf(", %.6f s covered\n", stats.coverageSeconds);
        std::printf("energy: %.6f J\n", stats.energyJoules);
        std::printf("power: mean %.4f W  min %.4f  max %.4f\n",
                    stats.meanPower, stats.minPower, stats.maxPower);
    }

    if (list_buckets) {
        std::printf("%12s %12s %8s %10s %10s %10s %12s\n", "start_s",
                    "end_s", "samples", "min_W", "max_W", "mean_W",
                    "energy_J");
        for (const auto &bucket : buckets) {
            if (bucket.endTime <= from || bucket.startTime >= to)
                continue;
            std::printf(
                "%12.6f %12.6f %8llu %10.4f %10.4f %10.4f %12.6f\n",
                bucket.startTime, bucket.endTime,
                static_cast<unsigned long long>(bucket.samples),
                bucket.minPower, bucket.maxPower,
                bucket.meanPower(), bucket.energyJoules);
        }
    }

    if (!csv_path.empty()) {
        std::ofstream out(csv_path);
        if (!out)
            throw UsageError("cannot open " + csv_path);
        CsvWriter csv(out);
        csv.header({"start_s", "end_s", "samples", "min_W", "max_W",
                    "mean_W", "energy_J"});
        for (const auto &bucket : buckets) {
            if (bucket.endTime <= from || bucket.startTime >= to)
                continue;
            csv.row({bucket.startTime, bucket.endTime,
                     static_cast<double>(bucket.samples),
                     bucket.minPower, bucket.maxPower,
                     bucket.meanPower(), bucket.energyJoules});
        }
        std::printf("wrote %zu rows to %s\n", csv.rowCount(),
                    csv_path.c_str());
    }

    if (obs_format) {
        std::fflush(stdout);
        if (*obs_format == obs::Format::Table)
            std::cout << "\n--- observability snapshot ---\n";
        obs::write(std::cout, obs::Registry::global().snapshot(),
                   *obs_format);
    }
    return 0;
} catch (const std::exception &e) {
    std::fprintf(stderr, "psquery: %s\n", e.what());
    return 1;
}
