/**
 * @file
 * Shared plumbing for the PowerSensor3 command-line tools.
 *
 * Every tool accepts either a real serial device (-d /dev/ttyACM0) or
 * a simulated rig (--sim <spec>), so the complete tool suite runs
 * without hardware. Rig specs:
 *
 *   bench[:module=<name>][:volts=<V>][:amps=<A>]   lab bench (default)
 *   gpu[:card=rtx4000ada|w7700]                    GPU node
 *   soc                                            Jetson-style SoC kit
 *
 * In simulated mode the link is throttled to the real USB rate by
 * default so device time tracks wall time (tools like psrun measure a
 * real child process); pass --fast to run at full virtual speed.
 */

#ifndef PS3_APPS_TOOL_COMMON_HPP
#define PS3_APPS_TOOL_COMMON_HPP

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "host/power_sensor.hpp"
#include "host/sim_setup.hpp"
#include "obs/exposition.hpp"

namespace ps3::tools {

/**
 * Exit code when --connect cannot reach (or is refused by) a ps3d
 * endpoint. Distinct from the generic error exit (1) and the usage
 * exit (2) so scripts can tell "daemon not up" from "I broke it".
 */
inline constexpr int kExitConnectFailed = 3;

/**
 * Exit code when a daemon cannot bind its endpoint because another
 * live daemon already serves it. Scripts restarting ps3d can treat
 * this as "already running" rather than a crash.
 */
inline constexpr int kExitAddressInUse = 4;

/** Parsed common options plus the opened connection. */
struct ToolContext
{
    /** Present when running against the simulator. */
    std::optional<host::SimulatedRig> rig;
    /**
     * The opened sensor: a local host::PowerSensor (hardware or
     * simulator) or a net::NetPowerSensor when --connect was given.
     */
    std::unique_ptr<host::Sensor> sensor;
    /** Tool-specific positional/remaining arguments. */
    std::vector<std::string> args;
    /** Set when --stats[=FORMAT] was given. */
    std::optional<obs::Format> statsFormat;
};

/**
 * Parse common options and open the device.
 *
 * Recognised options: -d/--device PATH, --sim SPEC,
 * --connect URI (tcp://host:port or unix:///path served by ps3d),
 * --tier raw|1kHz|10Hz|1Hz (reduced-rate PS3N v1.2 subscription;
 * needs --connect), --fast, --stats[=FORMAT], --verbose, -h/--help
 * (prints usage + tool_usage and exits).
 *
 * @param argc/argv Main arguments.
 * @param tool_name Tool name for usage text.
 * @param tool_usage Tool-specific usage lines.
 */
ToolContext openTool(int argc, char **argv,
                     const std::string &tool_name,
                     const std::string &tool_usage);

/**
 * End-of-run observability snapshot: when --stats was given, print
 * the global metric registry to stdout in the requested format
 * (default: human table). Call just before exiting, while the sensor
 * is still connected.
 */
void printStats(const ToolContext &context);

/** Print one pair's configuration records. */
void printPairConfig(const firmware::DeviceConfig &config,
                     unsigned pair);

} // namespace ps3::tools

#endif // PS3_APPS_TOOL_COMMON_HPP
