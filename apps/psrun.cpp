/**
 * @file
 * psrun — connect to the PowerSensor, run the given command, and
 * report the total energy consumed during its execution (paper
 * Sec. III-C: the interval-based mode's standalone executable).
 *
 *   psrun [--sim SPEC] [-o dumpfile] -- <command> [args...]
 *
 * With -o, the full 20 kHz stream is additionally dumped to a file
 * (continuous mode), with markers around the command execution.
 * Naming the file "*.ps3b" selects the compact lossless binary dump
 * format; anything else produces the human-readable text format.
 * Both are written by the asynchronous dump pipeline and read back
 * by psdump.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include <sys/wait.h>
#include <unistd.h>

#include "tool_common.hpp"

namespace {

int
runChild(const std::vector<std::string> &command)
{
    const pid_t pid = ::fork();
    if (pid < 0) {
        std::perror("psrun: fork");
        return -1;
    }
    if (pid == 0) {
        std::vector<char *> argv;
        argv.reserve(command.size() + 1);
        for (const auto &arg : command)
            argv.push_back(const_cast<char *>(arg.c_str()));
        argv.push_back(nullptr);
        ::execvp(argv[0], argv.data());
        std::perror("psrun: exec");
        std::_Exit(127);
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

} // namespace

int
main(int argc, char **argv)
try {
    using namespace ps3;

    auto context = tools::openTool(
        argc, argv, "psrun",
        "  [-o dumpfile] -- <command> [args...]\n"
        "  runs the command and reports its energy consumption\n");
    auto &sensor = *context.sensor;

    std::string dump_file;
    std::vector<std::string> command;
    bool after_separator = false;
    for (std::size_t i = 0; i < context.args.size(); ++i) {
        const auto &arg = context.args[i];
        if (after_separator) {
            command.push_back(arg);
        } else if (arg == "--") {
            after_separator = true;
        } else if (arg == "-o" && i + 1 < context.args.size()) {
            dump_file = context.args[++i];
        } else {
            command.push_back(arg);
            after_separator = true;
        }
    }
    if (command.empty()) {
        std::fprintf(stderr, "psrun: no command given\n");
        return 2;
    }

    if (!dump_file.empty())
        sensor.dump(dump_file);

    sensor.mark('B');
    const auto first = sensor.read();
    const int exit_code = runChild(command);
    const auto second = sensor.read();
    sensor.mark('E');

    if (!dump_file.empty()) {
        // Let the end marker land: the flagged frame set can trail
        // the command by a full pre-generated link chunk.
        sensor.waitForSamples(4096);
        sensor.dump("");
    }

    const double seconds = host::seconds(first, second);
    std::printf("exit status: %d\n", exit_code);
    std::printf("runtime:     %.6f s (device time)\n", seconds);
    std::printf("energy:      %.4f J\n", host::Joules(first, second));
    if (seconds > 0.0) {
        std::printf("avg power:   %.4f W\n",
                    host::Watts(first, second));
    }
    for (unsigned pair = 0; pair < host::kMaxPairs; ++pair) {
        if (!second.present[pair])
            continue;
        std::printf("  pair %u (%s): %.4f J\n", pair,
                    sensor.pairName(pair).c_str(),
                    host::Joules(first, second,
                                 static_cast<int>(pair)));
    }
    std::fflush(stdout);
    tools::printStats(context);
    return exit_code;
} catch (const std::exception &e) {
    std::fprintf(stderr, "psrun: %s\n", e.what());
    return 1;
}
