/**
 * @file
 * ps3d — the PowerSensor3 streaming daemon.
 *
 * Owns one primary sensor (real hardware, or a simulated rig for
 * testing) — and optionally a fleet of simulated extras — and serves
 * the live streams to any number of subscribers over TCP and/or
 * Unix-domain sockets (docs/PROTOCOL.md) or shared memory
 * (docs/SHMEM.md). Tools on other machines — or other processes on
 * this one — attach with `--connect`:
 *
 *   ps3d -d /dev/ttyACM0 --listen tcp://0.0.0.0:9151 \
 *                        --listen shm:///run/ps3-shm.sock
 *   psrun --connect tcp://measurehost:9151 -- ./benchmark
 *   psfleet --connect tcp://measurehost:9151
 *
 * Every endpoint is served by one epoll event-loop thread
 * (net::FleetServer): PS3N v1.x clients get the primary sensor's
 * classic single stream, PS3N v2 clients (psfleet) can subscribe to
 * every sensor over one multiplexed connection. `--sensors N` adds N
 * simulated fleet sensors next to the primary — the substrate for
 * fleet-tool development without racking N machines.
 *
 * --listen may be repeated to serve several endpoints at once; the
 * default is tcp://127.0.0.1:9151. --duration bounds the runtime
 * (tests); otherwise the daemon runs until SIGINT/SIGTERM and shuts
 * down gracefully (subscribers get the stream's tail plus an
 * end-of-stream frame). When the endpoint is already served by a
 * live daemon, ps3d exits with a dedicated code (4) and a one-line
 * pointer instead of a stack of socket errors.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "common/errors.hpp"
#include "common/version.hpp"
#include "net/fleet_server.hpp"
#include "net/registry.hpp"
#include "tool_common.hpp"

namespace {

std::atomic<bool> stop_requested{false};

void
onSignal(int)
{
    stop_requested.store(true, std::memory_order_release);
}

} // namespace

int
main(int argc, char **argv)
try {
    using namespace ps3;

    auto context = tools::openTool(
        argc, argv, "ps3d",
        "  --listen URI    endpoint to serve (repeatable; default\n"
        "                  tcp://127.0.0.1:9151). Schemes: tcp://\n"
        "                  host:port, unix://path, shm://path\n"
        "                  (local shared-memory stream, see\n"
        "                  docs/SHMEM.md)\n"
        "  --sensors N     add N simulated fleet sensors next to\n"
        "                  the primary (PS3N v2 subscribers see\n"
        "                  N+1 sensors; v1 clients still get the\n"
        "                  primary)\n"
        "  --fleet-rate HZ sample rate of the simulated fleet\n"
        "                  sensors (default 1000)\n"
        "  --duration S    exit after S seconds (default: run until\n"
        "                  SIGINT/SIGTERM)\n"
        "  serves the sensor stream to psrun/psinfo/psfleet "
        "--connect\n");

    std::vector<std::string> listen_uris;
    double duration = -1.0;
    unsigned long fleet_sensors = 0;
    double fleet_rate = 1000.0;
    for (std::size_t i = 0; i < context.args.size(); ++i) {
        const std::string &arg = context.args[i];
        auto next = [&]() -> const std::string & {
            if (i + 1 >= context.args.size())
                throw UsageError(arg + " needs an argument");
            return context.args[++i];
        };
        if (arg == "--listen")
            listen_uris.push_back(next());
        else if (arg == "--duration")
            duration = std::stod(next());
        else if (arg == "--sensors")
            fleet_sensors = std::stoul(next());
        else if (arg == "--fleet-rate")
            fleet_rate = std::stod(next());
        else
            throw UsageError("ps3d: unknown argument: " + arg);
    }
    if (listen_uris.empty())
        listen_uris.push_back("tcp://127.0.0.1:9151");
    if (fleet_rate <= 0.0)
        throw UsageError("ps3d: --fleet-rate must be positive");

    net::SensorRegistry registry;
    registry.addSensor(*context.sensor, "primary");

    // The simulated fleet reuses the primary's configuration (pair
    // names, sensitivities); smaller rings keep N sensors cheap.
    std::vector<std::uint16_t> fleet_ids;
    const auto fleet_config = registry.entry(0).config;
    for (unsigned long i = 0; i < fleet_sensors; ++i)
        fleet_ids.push_back(registry.addSimulated(
            "sim-" + std::to_string(i), fleet_config, "sim-fleet",
            fleet_rate, 1u << 12));
    std::unique_ptr<net::SimulatedFleet> fleet;
    if (!fleet_ids.empty())
        fleet = std::make_unique<net::SimulatedFleet>(
            registry, std::move(fleet_ids));

    net::FleetServer server(registry);
    try {
        for (const auto &uri : listen_uris) {
            const auto bound =
                server.listen(transport::Endpoint::parse(uri));
            std::printf("ps3d %s: serving %s\n",
                        kHostLibraryVersion,
                        bound.describe().c_str());
        }
    } catch (const AddressInUseError &e) {
        std::fprintf(stderr, "ps3d: %s\n", e.what());
        return tools::kExitAddressInUse;
    }
    std::fflush(stdout);

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    const auto start = std::chrono::steady_clock::now();
    while (!stop_requested.load(std::memory_order_acquire)) {
        if (context.sensor->deviceGone()) {
            std::fprintf(stderr, "ps3d: sensor disappeared\n");
            break;
        }
        if (duration >= 0.0
            && std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                       .count()
                   >= duration)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    if (fleet)
        fleet->stop();
    registry.stopAll();
    server.stop();
    std::printf("ps3d: served %llu marker request(s), dropped %llu "
                "record(s)\n",
                static_cast<unsigned long long>(
                    server.markerRequests()),
                static_cast<unsigned long long>(
                    server.recordsDropped()));
    std::fflush(stdout);
    tools::printStats(context);
    return 0;
} catch (const std::exception &e) {
    std::fprintf(stderr, "ps3d: %s\n", e.what());
    return 1;
}
