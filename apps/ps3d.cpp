/**
 * @file
 * ps3d — the PowerSensor3 streaming daemon.
 *
 * Owns one sensor (real hardware, or a simulated rig for testing)
 * and serves its live 20 kHz stream to any number of subscribers
 * over TCP and/or Unix-domain sockets (docs/PROTOCOL.md, "Network
 * wire protocol") or shared memory (docs/SHMEM.md). Tools on other
 * machines — or other processes on this one — attach with
 * `--connect`:
 *
 *   ps3d -d /dev/ttyACM0 --listen tcp://0.0.0.0:9151 \
 *                        --listen shm:///run/ps3-shm.sock
 *   psrun --connect tcp://measurehost:9151 -- ./benchmark
 *   psrun --connect shm:///run/ps3-shm.sock -- ./benchmark
 *
 * --listen may be repeated to serve several endpoints at once; the
 * default is tcp://127.0.0.1:9151. An shm:// endpoint is a local
 * Unix control socket whose subscribers map the daemon's broadcast
 * ring and read it with zero steady-state syscalls. --duration
 * bounds the runtime (tests); otherwise the daemon runs until
 * SIGINT/SIGTERM and shuts down gracefully (subscribers get the
 * stream's tail plus an end-of-stream frame).
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/errors.hpp"
#include "common/version.hpp"
#include "net/server.hpp"
#include "tool_common.hpp"

namespace {

std::atomic<bool> stop_requested{false};

void
onSignal(int)
{
    stop_requested.store(true, std::memory_order_release);
}

} // namespace

int
main(int argc, char **argv)
try {
    using namespace ps3;

    auto context = tools::openTool(
        argc, argv, "ps3d",
        "  --listen URI    endpoint to serve (repeatable; default\n"
        "                  tcp://127.0.0.1:9151). Schemes: tcp://\n"
        "                  host:port, unix://path, shm://path\n"
        "                  (local shared-memory stream, see\n"
        "                  docs/SHMEM.md)\n"
        "  --duration S    exit after S seconds (default: run until\n"
        "                  SIGINT/SIGTERM)\n"
        "  serves the sensor stream to psrun/psinfo/... --connect\n");

    std::vector<std::string> listen_uris;
    double duration = -1.0;
    for (std::size_t i = 0; i < context.args.size(); ++i) {
        const std::string &arg = context.args[i];
        auto next = [&]() -> const std::string & {
            if (i + 1 >= context.args.size())
                throw UsageError(arg + " needs an argument");
            return context.args[++i];
        };
        if (arg == "--listen")
            listen_uris.push_back(next());
        else if (arg == "--duration")
            duration = std::stod(next());
        else
            throw UsageError("ps3d: unknown argument: " + arg);
    }
    if (listen_uris.empty())
        listen_uris.push_back("tcp://127.0.0.1:9151");

    net::Ps3Server server(*context.sensor);
    for (const auto &uri : listen_uris) {
        const auto bound =
            server.listen(transport::Endpoint::parse(uri));
        std::printf("ps3d %s: serving %s\n", kHostLibraryVersion,
                    bound.describe().c_str());
    }
    std::fflush(stdout);

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    const auto start = std::chrono::steady_clock::now();
    while (!stop_requested.load(std::memory_order_acquire)) {
        if (context.sensor->deviceGone()) {
            std::fprintf(stderr, "ps3d: sensor disappeared\n");
            break;
        }
        if (duration >= 0.0
            && std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                       .count()
                   >= duration)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    server.stop();
    std::printf("ps3d: served %llu marker request(s), dropped %llu "
                "record(s)\n",
                static_cast<unsigned long long>(
                    server.markerRequests()),
                static_cast<unsigned long long>(
                    server.recordsDropped()));
    std::fflush(stdout);
    tools::printStats(context);
    return 0;
} catch (const std::exception &e) {
    std::fprintf(stderr, "ps3d: %s\n", e.what());
    return 1;
}
