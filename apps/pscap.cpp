/**
 * @file
 * pscap — closed-loop group power capping over a live fleet stream.
 *
 *   pscap [--budget W] [--seconds S] [--rate HZ] [--listen URI]
 *         [--tolerance F] [--stats[=FORMAT]]
 *
 * Self-contained demonstration (and ctest assertion) of the
 * energy::PowerCapCoordinator control loop: three governed device
 * models — a 16-core server CPU, an RTX-4000-Ada-class GPU under
 * locked clocks, and an NVMe SSD at full mixed I/O — are published
 * as three fleet sensors through a real net::FleetServer, and a
 * FleetCapLoop subscriber feeds the streamed records back into the
 * coordinator, which steps the models' DVFS governors to hold the
 * group under --budget. The whole feedback path crosses the real
 * encode/socket/decode stack; nothing is short-circuited.
 *
 * Exit codes: 0 when the loop converges and the steady-state group
 * power stays within --tolerance (default 5%) of the budget; 2 for
 * usage errors; 5 when the loop never converges; 6 when steady-state
 * power leaves the tolerance band; 1 on other errors.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <iostream>
#include <optional>

#include <unistd.h>

#include "common/errors.hpp"
#include "dut/governor.hpp"
#include "energy/fleet_cap.hpp"
#include "energy/power_cap.hpp"
#include "net/fleet_server.hpp"
#include "net/registry.hpp"
#include "obs/exposition.hpp"
#include "storage/ssd_dut.hpp"

namespace {

constexpr int kExitNotConverged = 5;
constexpr int kExitOutOfBand = 6;

} // namespace

int
main(int argc, char **argv)
try {
    using namespace ps3;

    double budget = 150.0;
    double seconds = 2.0;
    double rate = 20000.0;
    double tolerance = 0.05;
    std::string listen_uri;
    std::optional<obs::Format> obs_format;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                throw UsageError(arg + " needs an argument");
            return argv[++i];
        };
        if (arg == "--budget")
            budget = std::stod(next());
        else if (arg == "--seconds")
            seconds = std::stod(next());
        else if (arg == "--rate")
            rate = std::stod(next());
        else if (arg == "--tolerance")
            tolerance = std::stod(next());
        else if (arg == "--listen")
            listen_uri = next();
        else if (arg == "--stats")
            obs_format = obs::Format::Table;
        else if (arg.rfind("--stats=", 0) == 0)
            obs_format = obs::parseFormat(arg.substr(8));
        else if (arg == "-h" || arg == "--help") {
            std::printf(
                "usage: pscap [--budget W] [--seconds S] "
                "[--rate HZ]\n"
                "             [--listen URI] [--tolerance F] "
                "[--stats[=FORMAT]]\n");
            return 0;
        } else
            throw UsageError("pscap: unknown argument: " + arg);
    }
    if (budget <= 0.0 || seconds <= 0.0 || rate <= 0.0
        || tolerance <= 0.0)
        throw UsageError("pscap: arguments must be positive");
    if (listen_uri.empty())
        listen_uri = "unix:///tmp/pscap-"
                     + std::to_string(::getpid()) + ".sock";

    // --- the plant: three governed device models at full load.
    dut::CpuDutModel cpu(dut::CpuSpec::server16Core());
    cpu.setProgram({{0.0, 1e9, cpu.spec().cores, 1.0}});
    dut::GpuDutModel gpu(dut::GpuSpec::rtx4000Ada().tuningVariant());
    gpu.setProgram({{0.0, 1e9, 0.0, 0}});
    storage::SsdDutModel ssd;
    storage::SsdWorkloadPoint io;
    io.gcActive = true;
    ssd.setWorkload(io);

    // Fine 16-level ladders keep the actuation granularity well
    // inside the tolerance band.
    dut::DvfsGovernor cpu_gov(
        "cpu", dut::makeLadder(3600.0, 1.05, 1200.0, 0.75, 16),
        [&cpu](double s) { cpu.setPowerScale(s); });
    dut::DvfsGovernor gpu_gov(
        "gpu",
        dut::makeLadder(gpu.spec().boostClockMHz, 1.05,
                        gpu.spec().baseClockMHz, 0.70, 16),
        [&gpu](double s) { gpu.setPowerScale(s); });
    dut::DvfsGovernor ssd_gov(
        "ssd", dut::makeLadder(1000.0, 1.0, 350.0, 0.9, 5),
        [&ssd](double s) { ssd.setPowerScale(s); });

    const double uncapped = cpu.truePower(1.0) + gpu.truePower(1.0)
                            + ssd.truePower(1.0);

    // --- the streaming plane: registry + server + paced publisher.
    net::SensorRegistry registry;
    const firmware::DeviceConfig config{};
    std::vector<energy::GovernedMember> members;
    members.push_back({registry.addSimulated("cpu", config, "sim-cap",
                                             rate, 1u << 12),
                       &cpu, 12.0});
    members.push_back({registry.addSimulated("gpu", config, "sim-cap",
                                             rate, 1u << 12),
                       &gpu, 12.0});
    members.push_back({registry.addSimulated("ssd", config, "sim-cap",
                                             rate, 1u << 12),
                       &ssd, 3.3});

    net::FleetServer server(registry);
    const auto bound =
        server.listen(transport::Endpoint::parse(listen_uri));
    energy::GovernedFleet fleet(registry, members, rate);

    // --- the controller: coordinator + live subscription.
    energy::CapPolicy policy;
    policy.budgetWatts = budget;
    energy::PowerCapCoordinator coordinator(policy);
    coordinator.addMember("cpu", cpu_gov);
    coordinator.addMember("gpu", gpu_gov);
    coordinator.addMember("ssd", ssd_gov);
    energy::FleetCapLoop loop(
        bound, {members[0].sensorId, members[1].sensorId,
                members[2].sensorId},
        coordinator);

    std::printf("pscap: %s, uncapped %.1f W, budget %.1f W\n",
                bound.describe().c_str(), uncapped, budget);
    std::fflush(stdout);

    // Run; sample the rollup over the trailing half for the
    // steady-state verdict.
    const auto start = std::chrono::steady_clock::now();
    double steady_min = 1e300, steady_max = 0.0;
    std::uint64_t steady_samples = 0;
    for (;;) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        const double elapsed = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now()
                                   - start)
                                   .count();
        if (elapsed >= seconds)
            break;
        if (elapsed >= 0.5 * seconds) {
            const auto status = coordinator.status();
            steady_min = std::min(steady_min, status.filteredWatts);
            steady_max = std::max(steady_max, status.filteredWatts);
            ++steady_samples;
        }
    }

    loop.stop();
    fleet.stop();
    registry.stopAll();
    server.stop();

    const auto status = coordinator.status();
    const auto levels = coordinator.memberLevels();
    std::printf("pscap: group %.1f W (filtered %.1f), steady "
                "[%.1f, %.1f] W over %llu samples\n",
                status.groupWatts, status.filteredWatts, steady_min,
                steady_max,
                static_cast<unsigned long long>(steady_samples));
    std::printf("pscap: converged in %.3f s (first step-down after "
                "%.3f s), peak %.1f W, %llu down / %llu up, levels "
                "cpu=%u gpu=%u ssd=%u\n",
                status.secondsToConverge, status.firstStepDownAfter,
                status.maxFilteredWatts,
                static_cast<unsigned long long>(status.stepDowns),
                static_cast<unsigned long long>(status.stepUps),
                levels[0], levels[1], levels[2]);
    std::printf("pscap: %llu records streamed, %llu gap(s)\n",
                static_cast<unsigned long long>(loop.recordsSeen()),
                static_cast<unsigned long long>(loop.gapRecords()));
    if (obs_format) {
        std::fflush(stdout);
        obs::write(std::cout, obs::Registry::global().snapshot(),
                   *obs_format);
    }
    std::fflush(stdout);

    // Only bind the verdict to convergence and the band when the
    // budget actually required throttling; an over-generous budget
    // trivially holds (no excursion, nothing to converge from).
    const bool capped = uncapped > budget;
    if (capped
        && (status.secondsToConverge < 0.0 || steady_samples == 0)) {
        std::fprintf(stderr, "pscap: loop never converged\n");
        return kExitNotConverged;
    }
    if (capped
        && (steady_max > budget * (1.0 + tolerance)
            || steady_min < budget * (1.0 - tolerance))) {
        std::fprintf(stderr,
                     "pscap: steady state [%.1f, %.1f] W outside "
                     "+/-%.0f%% of %.1f W\n",
                     steady_min, steady_max, tolerance * 100.0,
                     budget);
        return kExitOutOfBand;
    }
    return 0;
} catch (const ps3::UsageError &e) {
    std::fprintf(stderr, "pscap: %s\n", e.what());
    return 2;
} catch (const std::exception &e) {
    std::fprintf(stderr, "pscap: %s\n", e.what());
    return 1;
}
