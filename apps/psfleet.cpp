/**
 * @file
 * psfleet — live rollups over a fleet of PowerSensor3 daemons.
 *
 * Connects to one or more ps3d endpoints with the multiplexed PS3N
 * v2 protocol (one connection per daemon, one stream per sensor) and
 * prints a periodic fleet rollup: sensor count, total/min/max power
 * and the running gap count across every stream:
 *
 *   psfleet --connect tcp://hostA:9151 --connect tcp://hostB:9151
 *   fleet: 514 sensors, sum=6182.4 W, min=2.1 W, max=38.9 W, gaps=0
 *
 * `--list` prints each daemon's sensor table instead of streaming.
 * A v1-only daemon refuses the v2 hello; psfleet reports it and
 * exits with the connect-failed code (3), same as an unreachable
 * endpoint.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/errors.hpp"
#include "net/fleet_client.hpp"
#include "tool_common.hpp"

namespace {

using namespace ps3;

std::atomic<bool> stop_requested{false};

void
onSignal(int)
{
    stop_requested.store(true, std::memory_order_release);
}

/** Total power of a record over its present pairs (W). */
double
recordPower(const host::DumpRecord &record)
{
    double watts = 0.0;
    for (unsigned pair = 0; pair < host::kMaxPairs; ++pair)
        if (record.presentMask & (1u << pair))
            watts += record.voltage[pair] * record.current[pair];
    return watts;
}

/** One daemon connection and its per-sensor state. */
struct FleetMember
{
    std::string uri;
    std::unique_ptr<net::FleetClient> client;
    std::thread thread;

    std::mutex mutex; ///< guards power/records below
    std::vector<double> power;         ///< last power per sensor
    std::vector<std::uint64_t> records; ///< records per sensor
    std::atomic<std::uint64_t> gaps{0};
    std::atomic<bool> done{false};

    /** Poll the connection until it ends or we are stopped. */
    void
    run()
    {
        net::FleetClient::Event event;
        while (!stop_requested.load(std::memory_order_acquire)) {
            if (!client->poll(event, 0.1))
                continue;
            switch (event.kind) {
            case net::FleetClient::Event::Kind::Records: {
                // Stream id = sensor id + 1 (0 is control).
                const std::size_t sensor = event.streamId - 1;
                if (sensor >= power.size()
                    || event.records.empty())
                    break;
                std::lock_guard<std::mutex> lock(mutex);
                power[sensor] = recordPower(event.records.back());
                records[sensor] += event.records.size();
                gaps.fetch_add(event.gapRecords,
                               std::memory_order_relaxed);
                break;
            }
            case net::FleetClient::Event::Kind::Heartbeat:
                gaps.fetch_add(event.gapRecords,
                               std::memory_order_relaxed);
                break;
            case net::FleetClient::Event::Kind::ConnectionClosed:
                done.store(true, std::memory_order_release);
                return;
            default:
                break;
            }
        }
    }
};

} // namespace

int
main(int argc, char **argv)
try {
    std::vector<std::string> connect_uris;
    double duration = -1.0;
    double interval = 1.0;
    bool list_only = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                throw UsageError(arg + " needs an argument");
            return argv[++i];
        };
        if (arg == "--connect")
            connect_uris.push_back(next());
        else if (arg == "--duration")
            duration = std::stod(next());
        else if (arg == "--interval")
            interval = std::stod(next());
        else if (arg == "--list")
            list_only = true;
        else if (arg == "-h" || arg == "--help") {
            std::printf(
                "usage: psfleet --connect URI [--connect URI ...]\n"
                "  --connect URI   a ps3d endpoint (repeatable)\n"
                "  --list          print the sensor tables and "
                "exit\n"
                "  --interval S    seconds between rollup lines "
                "(default 1)\n"
                "  --duration S    exit after S seconds (default: "
                "run\n"
                "                  until SIGINT/SIGTERM)\n");
            return 0;
        } else
            throw UsageError("psfleet: unknown argument: " + arg);
    }
    if (connect_uris.empty())
        throw UsageError(
            "psfleet: at least one --connect URI is required");
    if (interval <= 0.0)
        throw UsageError("psfleet: --interval must be positive");

    // Connect and enumerate every daemon up front; any refusal is
    // the "daemon not up (or not fleet-capable)" exit.
    std::vector<std::unique_ptr<FleetMember>> members;
    for (const auto &uri : connect_uris) {
        auto member = std::make_unique<FleetMember>();
        member->uri = uri;
        try {
            member->client = net::FleetClient::connect(
                transport::Endpoint::parse(uri), 5.0);
        } catch (const DeviceError &e) {
            std::fprintf(stderr, "psfleet: %s: %s\n", uri.c_str(),
                         e.what());
            return tools::kExitConnectFailed;
        }
        members.push_back(std::move(member));
    }

    if (list_only) {
        for (auto &member : members) {
            member->client->requestSensorList();
            net::FleetClient::Event event;
            while (member->client->poll(event, 5.0)
                   && event.kind
                          != net::FleetClient::Event::Kind::Sensors)
                ;
            std::printf("%s: %zu sensor(s)\n", member->uri.c_str(),
                        event.sensors.size());
            for (const auto &sensor : event.sensors)
                std::printf("  %4u  %-24s %.0f Hz\n", sensor.id,
                            sensor.name.c_str(),
                            sensor.sampleRateHz);
        }
        return 0;
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    // Subscribe to everything, then poll each connection from its
    // own thread (the rollup below only reads shared state).
    for (auto &member : members) {
        const std::uint16_t count = member->client->sensorCount();
        member->power.assign(count,
                             std::numeric_limits<double>::quiet_NaN());
        member->records.assign(count, 0);
        for (std::uint16_t sensor = 0; sensor < count; ++sensor)
            member->client->subscribe(
                static_cast<std::uint16_t>(sensor + 1), sensor);
        FleetMember *raw = member.get();
        member->thread = std::thread([raw] { raw->run(); });
    }

    const auto start = std::chrono::steady_clock::now();
    auto next_report =
        start + std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(interval));
    while (!stop_requested.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        const auto now = std::chrono::steady_clock::now();
        if (duration >= 0.0
            && std::chrono::duration<double>(now - start).count()
                   >= duration)
            break;
        if (std::all_of(members.begin(), members.end(),
                        [](const auto &m) {
                            return m->done.load(
                                std::memory_order_acquire);
                        })) {
            std::fprintf(stderr,
                         "psfleet: all daemons disconnected\n");
            break;
        }
        if (now < next_report)
            continue;
        next_report +=
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(interval));

        std::size_t sensors = 0, reporting = 0;
        double sum = 0.0;
        double lo = std::numeric_limits<double>::infinity();
        double hi = -std::numeric_limits<double>::infinity();
        std::uint64_t gaps = 0;
        for (auto &member : members) {
            std::lock_guard<std::mutex> lock(member->mutex);
            sensors += member->power.size();
            for (double watts : member->power) {
                if (std::isnan(watts))
                    continue;
                ++reporting;
                sum += watts;
                lo = std::min(lo, watts);
                hi = std::max(hi, watts);
            }
            gaps += member->gaps.load(std::memory_order_relaxed);
        }
        if (reporting == 0)
            std::printf("fleet: %zu sensors, no data yet\n",
                        sensors);
        else
            std::printf("fleet: %zu sensors, sum=%.1f W, "
                        "min=%.2f W, max=%.2f W, gaps=%llu\n",
                        sensors, sum, lo, hi,
                        static_cast<unsigned long long>(gaps));
        std::fflush(stdout);
    }

    stop_requested.store(true, std::memory_order_release);
    for (auto &member : members) {
        member->client->abort();
        if (member->thread.joinable())
            member->thread.join();
    }

    std::uint64_t records = 0, gaps = 0;
    for (auto &member : members) {
        for (std::uint64_t n : member->records)
            records += n;
        gaps += member->gaps.load(std::memory_order_relaxed);
    }
    std::printf("psfleet: %zu daemon(s), %llu record(s), %llu "
                "gap record(s)\n",
                members.size(),
                static_cast<unsigned long long>(records),
                static_cast<unsigned long long>(gaps));
    return 0;
} catch (const std::exception &e) {
    std::fprintf(stderr, "psfleet: %s\n", e.what());
    return dynamic_cast<const ps3::UsageError *>(&e) != nullptr ? 2
                                                                : 1;
}
