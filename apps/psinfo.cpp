/**
 * @file
 * psinfo — show the configuration of each enabled sensor, the latest
 * measurements, and the total power (paper Sec. III-C).
 */

#include <cstdio>
#include <thread>

#include "common/version.hpp"
#include "net/wire.hpp"
#include "tool_common.hpp"

int
main(int argc, char **argv)
try {
    using namespace ps3;

    auto context = tools::openTool(
        argc, argv, "psinfo",
        "  prints sensor configuration and live readings\n");
    auto &sensor = *context.sensor;

    // Host and firmware versions side by side: when --connect is in
    // play, the firmware string comes from the daemon's handshake, so
    // a client/server skew is visible right here.
    std::printf("host library: %s (net protocol v%u)\n",
                kHostLibraryVersion,
                static_cast<unsigned>(net::kProtocolVersion));
    std::printf("firmware: %s\n", sensor.firmwareVersion().c_str());
    const auto config = sensor.config();
    for (unsigned pair = 0; pair < host::kMaxPairs; ++pair)
        tools::printPairConfig(config, pair);

    // Give the stream a moment to deliver fresh samples.
    sensor.waitForSamples(64);
    const auto state = sensor.read();

    std::printf("\nlive readings (t = %.6f s):\n", state.timeAtRead);
    for (unsigned pair = 0; pair < host::kMaxPairs; ++pair) {
        if (!state.present[pair])
            continue;
        std::printf("  pair %u (%s): %7.3f V %7.3f A %8.3f W\n", pair,
                    sensor.pairName(pair).c_str(),
                    state.voltage[pair], state.current[pair],
                    state.power(pair));
    }
    std::printf("  total: %.3f W\n", state.totalPower());
    std::fflush(stdout);
    tools::printStats(context);
    return 0;
} catch (const std::exception &e) {
    std::fprintf(stderr, "psinfo: %s\n", e.what());
    return 1;
}
