/**
 * @file
 * pstest — measure and report power and energy at increasing
 * intervals (paper Sec. III-C). Used by the evaluation benches of
 * Sec. IV to collect 128 k-sample batches.
 *
 * Options (after the common ones):
 *   --samples N   also report statistics over N samples
 *
 * pstest also hosts the network chaos soak (`--chaos[=short|long]`):
 * a self-contained resilience scenario that streams a publish-driven
 * Ps3Server through a transport::FaultySocket storm — resets,
 * truncated batches, read stalls, partial writes — and asserts that
 * the NetPowerSensor client accounts for every single record, either
 * as received or as covered by an explicit gap event. It needs no
 * device, rig or daemon, so it runs as a plain ctest.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/statistics.hpp"
#include "tool_common.hpp"

// ----- network chaos soak (--chaos) ---------------------------------------

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "host/dump_reader.hpp"
#include "net/net_power_sensor.hpp"
#include "net/server.hpp"
#include "transport/faulty_socket.hpp"

namespace {

using namespace ps3;

/** Distinct exit codes so the ctest log names the failed property. */
constexpr int kChaosExitNoChaos = 4;   ///< no fault ever disturbed us
constexpr int kChaosExitLostRecords = 5; ///< accounting hole
constexpr int kChaosExitHung = 6;      ///< stream never settled

/** Spin until predicate() or the timeout elapses; true on success. */
template <typename Predicate>
bool
waitFor(Predicate predicate, double timeout_seconds)
{
    const auto deadline =
        std::chrono::steady_clock::now()
        + std::chrono::duration<double>(timeout_seconds);
    while (!predicate()) {
        if (std::chrono::steady_clock::now() > deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return true;
}

firmware::DeviceConfig
chaosConfig()
{
    firmware::DeviceConfig config{};
    config[0].inUse = true;
    config[0].name = "12V-10A";
    config[0].vref = 1.65;
    config[0].slope = 0.11;
    config[1].inUse = true;
    config[1].slope = 0.09;
    return config;
}

/**
 * The soak proper. Exact-accounting invariant under test: every
 * record the server ever published is either received by the client
 * or covered by a gap event — records in flight when a fault kills a
 * connection must never vanish silently.
 */
int
runChaos(bool long_mode)
{
    // Scaled so the short mode fits a PR-gate ctest slot and the
    // long mode soaks through many more fault cycles.
    const double publish_seconds = long_mode ? 20.0 : 2.0;
    const double rate = long_mode ? 5000.0 : 3000.0;

    const std::string socket_path =
        "/tmp/ps3chaos_" + std::to_string(::getpid()) + ".sock";
    const std::string dump_path =
        "ps3chaos_" + std::to_string(::getpid()) + ".ps3b";

    net::Ps3Server::Options server_options;
    server_options.heartbeatInterval = 0.05;
    server_options.writeTimeout = 1.0;
    net::Ps3Server server(chaosConfig(), "PS3-chaos-1.0",
                          server_options);
    const auto endpoint =
        server.listen(transport::Endpoint::parse("unix://"
                                                 + socket_path));

    // Fault storm: each (re)connection gets the next fault kind in
    // the cycle. The very first fault arms only after the handshake
    // and first heartbeat have had ample time, so the client can lock
    // its sequence baseline before anything breaks. Cleared for the
    // final catch-up phase.
    std::atomic<bool> chaos_active{true};
    std::atomic<std::size_t> connections{0};
    auto factory = [&](const transport::Endpoint &target,
                       double timeout)
        -> std::unique_ptr<transport::StreamSocket> {
        auto socket = transport::SocketDevice::connect(target, timeout);
        if (!chaos_active.load(std::memory_order_acquire))
            return socket;
        const std::size_t attempt =
            connections.fetch_add(1, std::memory_order_relaxed);
        transport::Fault fault;
        switch (attempt % 4) {
          case 0:
            fault.kind = transport::Fault::Kind::Reset;
            fault.afterSeconds = attempt == 0 ? 0.5 : 0.10;
            fault.afterBytes = 256;
            break;
          case 1:
            fault.kind = transport::Fault::Kind::TruncateRead;
            fault.afterSeconds = 0.08;
            fault.afterBytes = 512;
            fault.truncateBytes = 96;
            break;
          case 2:
            fault.kind = transport::Fault::Kind::ReadStall;
            fault.afterSeconds = 0.10;
            fault.stallSeconds = 0.8; // > client idleTimeout
            break;
          default:
            fault.kind = transport::Fault::Kind::PartialWrite;
            fault.afterSeconds = 0.05;
            break;
        }
        return std::make_unique<transport::FaultySocket>(
            std::move(socket), std::vector<transport::Fault>{fault});
    };

    net::NetPowerSensor::Options client_options;
    client_options.socketFactory = factory;
    client_options.idleTimeout = 0.3; // fired by the 0.8 s stalls
    client_options.maxReconnectAttempts = 50;
    client_options.reconnectInitialBackoff = 0.01;
    client_options.reconnectMaxBackoff = 0.05;
    net::NetPowerSensor client(endpoint, client_options);

    // Lock the sequence baseline: the first seq a client ever hears
    // is taken as the stream start, so an initial heartbeat must land
    // before any record is published for the accounting to be exact
    // (docs/PROTOCOL.md).
    if (!waitFor([&] { return client.heartbeatsReceived() >= 1; },
                 10.0)) {
        std::fprintf(stderr,
                     "pschaos: no initial heartbeat within 10 s\n");
        return kChaosExitHung;
    }
    client.dump(dump_path); // exercise the gap-annotated dump path

    // Publish phase: paced records through the storm, with periodic
    // upstream marker requests so the write path faults too.
    const auto total = static_cast<std::uint64_t>(
        publish_seconds * rate);
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < total; ++i) {
        host::DumpRecord record{};
        record.time = static_cast<double>(i) / rate;
        record.presentMask = 0x1;
        record.voltage[0] = 12.0;
        record.current[0] = 2.0;
        server.publish(record);
        if (i % 512 == 0)
            client.mark('c'); // fire-and-forget; may hit a fault
        const auto next =
            start + std::chrono::duration<double>(
                        static_cast<double>(i + 1) / rate);
        std::this_thread::sleep_until(next);
    }

    // Catch-up phase: stop injecting faults, let the client reconnect
    // cleanly and hear a heartbeat carrying the end-of-stream seq, so
    // any trailing hole becomes a gap event.
    chaos_active.store(false, std::memory_order_release);
    const bool settled = waitFor(
        [&] {
            return client.recordsReceived() + client.gapRecords()
                   >= total;
        },
        long_mode ? 30.0 : 15.0);

    server.stop();
    const bool gone =
        waitFor([&] { return client.deviceGone(); }, 10.0);

    const std::uint64_t received = client.recordsReceived();
    const std::uint64_t gapped = client.gapRecords();
    std::printf("pschaos: published %llu  received %llu  "
                "gap-covered %llu  gaps %llu  reconnects %llu  "
                "client-heartbeats %llu\n",
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(received),
                static_cast<unsigned long long>(gapped),
                static_cast<unsigned long long>(client.gapEvents()),
                static_cast<unsigned long long>(client.reconnects()),
                static_cast<unsigned long long>(
                    client.heartbeatsReceived()));
    std::printf("pschaos: server heartbeats %llu  write-timeouts %llu"
                "  records-dropped %llu  subscribers-dropped %llu\n",
                static_cast<unsigned long long>(
                    server.heartbeatsSent()),
                static_cast<unsigned long long>(
                    server.writeTimeouts()),
                static_cast<unsigned long long>(
                    server.recordsDropped()),
                static_cast<unsigned long long>(
                    server.subscribersDropped()));

    const std::uint64_t gap_events = client.gapEvents();
    const std::uint64_t reconnects = client.reconnects();
    client.dump(""); // flush + close before reading it back

    int rc = 0;
    if (!settled || !gone) {
        std::fprintf(stderr,
                     "pschaos: FAIL stream never settled "
                     "(settled=%d deviceGone=%d)\n",
                     settled ? 1 : 0, gone ? 1 : 0);
        rc = kChaosExitHung;
    } else if (received + gapped != total) {
        std::fprintf(stderr,
                     "pschaos: FAIL %lld record(s) unaccounted for\n",
                     static_cast<long long>(
                         static_cast<std::int64_t>(total)
                         - static_cast<std::int64_t>(received
                                                     + gapped)));
        rc = kChaosExitLostRecords;
    } else if (reconnects == 0) {
        std::fprintf(stderr,
                     "pschaos: FAIL chaos was ineffective "
                     "(0 reconnects)\n");
        rc = kChaosExitNoChaos;
    }

    // The dump must carry the same gaps the listeners saw: one 'G'
    // record per event, record counts summing to gapRecords().
    if (rc == 0) {
        const auto dump = host::DumpFile::load(dump_path);
        std::uint64_t dump_gap_records = 0;
        for (const auto &gap : dump.gaps())
            dump_gap_records += gap.records;
        if (dump.gaps().size() != gap_events
            || dump_gap_records != gapped) {
            std::fprintf(stderr,
                         "pschaos: FAIL dump gap mismatch "
                         "(%zu 'G' records covering %llu vs %llu "
                         "events covering %llu)\n",
                         dump.gaps().size(),
                         static_cast<unsigned long long>(
                             dump_gap_records),
                         static_cast<unsigned long long>(gap_events),
                         static_cast<unsigned long long>(gapped));
            rc = kChaosExitLostRecords;
        }
    }
    if (rc == 0)
        std::printf("pschaos: PASS — every record accounted for "
                    "across %llu reconnect(s)\n",
                    static_cast<unsigned long long>(reconnects));
    std::remove(dump_path.c_str());
    return rc;
}

} // namespace

int
main(int argc, char **argv)
try {
    using namespace ps3;

    // The chaos soak is self-contained (it builds its own server and
    // client); intercept it before openTool() opens a rig.
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--chaos") == 0
            || std::strcmp(argv[i], "--chaos=short") == 0)
            return runChaos(false);
        if (std::strcmp(argv[i], "--chaos=long") == 0)
            return runChaos(true);
    }

    auto context = tools::openTool(
        argc, argv, "pstest",
        "  --samples N  collect N samples and print statistics\n"
        "  --chaos[=short|long]  run the network chaos soak\n");
    auto &sensor = *context.sensor;

    std::size_t stat_samples = 0;
    for (std::size_t i = 0; i < context.args.size(); ++i) {
        if (context.args[i] == "--samples"
            && i + 1 < context.args.size()) {
            stat_samples = std::strtoull(
                context.args[++i].c_str(), nullptr, 10);
        }
    }

    std::printf("%-12s %-12s %-12s\n", "interval_s", "avg_W",
                "energy_J");
    // Doubling intervals: 1/64 s up to 2 s of device time.
    for (double interval = 1.0 / 64; interval <= 2.0; interval *= 2) {
        const auto first = sensor.read();
        const auto sets = static_cast<std::uint64_t>(
            interval * firmware::kSampleRateHz);
        if (!sensor.waitForSamples(sets)) {
            std::fprintf(stderr, "pstest: device disappeared\n");
            return 1;
        }
        const auto second = sensor.read();
        std::printf("%-12.5f %-12.4f %-12.5f\n",
                    host::seconds(first, second),
                    host::Watts(first, second),
                    host::Joules(first, second));
    }

    if (stat_samples > 0) {
        RunningStatistics power;
        const auto token = sensor.addSampleListener(
            [&](const host::Sample &sample) {
                power.add(sample.totalPower());
            });
        sensor.waitForSamples(stat_samples);
        sensor.removeSampleListener(token);
        std::printf("\n%zu samples: min %.4f W  max %.4f W  "
                    "mean %.4f W  std %.4f W\n",
                    power.count(), power.min(), power.max(),
                    power.mean(), power.stddev());
    }
    std::fflush(stdout);
    tools::printStats(context);
    return 0;
} catch (const std::exception &e) {
    std::fprintf(stderr, "pstest: %s\n", e.what());
    return 1;
}
