/**
 * @file
 * pstest — measure and report power and energy at increasing
 * intervals (paper Sec. III-C). Used by the evaluation benches of
 * Sec. IV to collect 128 k-sample batches.
 *
 * Options (after the common ones):
 *   --samples N   also report statistics over N samples
 */

#include <cstdio>
#include <cstdlib>

#include "common/statistics.hpp"
#include "tool_common.hpp"

int
main(int argc, char **argv)
try {
    using namespace ps3;

    auto context = tools::openTool(
        argc, argv, "pstest",
        "  --samples N  collect N samples and print statistics\n");
    auto &sensor = *context.sensor;

    std::size_t stat_samples = 0;
    for (std::size_t i = 0; i < context.args.size(); ++i) {
        if (context.args[i] == "--samples"
            && i + 1 < context.args.size()) {
            stat_samples = std::strtoull(
                context.args[++i].c_str(), nullptr, 10);
        }
    }

    std::printf("%-12s %-12s %-12s\n", "interval_s", "avg_W",
                "energy_J");
    // Doubling intervals: 1/64 s up to 2 s of device time.
    for (double interval = 1.0 / 64; interval <= 2.0; interval *= 2) {
        const auto first = sensor.read();
        const auto sets = static_cast<std::uint64_t>(
            interval * firmware::kSampleRateHz);
        if (!sensor.waitForSamples(sets)) {
            std::fprintf(stderr, "pstest: device disappeared\n");
            return 1;
        }
        const auto second = sensor.read();
        std::printf("%-12.5f %-12.4f %-12.5f\n",
                    host::seconds(first, second),
                    host::Watts(first, second),
                    host::Joules(first, second));
    }

    if (stat_samples > 0) {
        RunningStatistics power;
        const auto token = sensor.addSampleListener(
            [&](const host::Sample &sample) {
                power.add(sample.totalPower());
            });
        sensor.waitForSamples(stat_samples);
        sensor.removeSampleListener(token);
        std::printf("\n%zu samples: min %.4f W  max %.4f W  "
                    "mean %.4f W  std %.4f W\n",
                    power.count(), power.min(), power.max(),
                    power.mean(), power.stddev());
    }
    std::fflush(stdout);
    tools::printStats(context);
    return 0;
} catch (const std::exception &e) {
    std::fprintf(stderr, "pstest: %s\n", e.what());
    return 1;
}
