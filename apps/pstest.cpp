/**
 * @file
 * pstest — measure and report power and energy at increasing
 * intervals (paper Sec. III-C). Used by the evaluation benches of
 * Sec. IV to collect 128 k-sample batches.
 *
 * Options (after the common ones):
 *   --samples N   also report statistics over N samples
 *
 * pstest also hosts the network chaos soak (`--chaos[=short|long]`):
 * a self-contained resilience scenario that streams a publish-driven
 * Ps3Server through a transport::FaultySocket storm — resets,
 * truncated batches, read stalls, partial writes — and asserts that
 * the NetPowerSensor client accounts for every single record, either
 * as received or as covered by an explicit gap event. It needs no
 * device, rig or daemon, so it runs as a plain ctest. The soak runs
 * with a live power-cap loop in the path (a governed CPU model feeds
 * the published records, an energy::PowerCapCoordinator on the
 * client side throttles it), asserting the controller degrades
 * gracefully across the reconnect gaps: bounded actuation, no
 * oscillation, and the accounting invariant untouched.
 *
 * `--cap` runs the closed-loop capping scenario end to end: three
 * governed CPU models streamed at 20 kHz through a real
 * net::FleetServer into an energy::FleetCapLoop, asserting
 * convergence onto the budget, bounded overshoot after convergence,
 * and feedback latency in stream time (exit 7 = never converged,
 * 8 = unstable/overshoot, 9 = slow feedback).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/statistics.hpp"
#include "tool_common.hpp"

// ----- network chaos soak (--chaos) ---------------------------------------

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "dut/governor.hpp"
#include "energy/fleet_cap.hpp"
#include "energy/power_cap.hpp"
#include "host/dump_reader.hpp"
#include "net/fleet_server.hpp"
#include "net/net_power_sensor.hpp"
#include "net/registry.hpp"
#include "net/server.hpp"
#include "transport/faulty_socket.hpp"

namespace {

using namespace ps3;

/** Distinct exit codes so the ctest log names the failed property. */
constexpr int kChaosExitNoChaos = 4;   ///< no fault ever disturbed us
constexpr int kChaosExitLostRecords = 5; ///< accounting hole
constexpr int kChaosExitHung = 6;      ///< stream never settled
constexpr int kCapExitNoConverge = 7;  ///< cap loop never converged
constexpr int kCapExitUnstable = 8;    ///< overshoot / oscillation
constexpr int kCapExitSlowFeedback = 9; ///< actuation came too late

/** Spin until predicate() or the timeout elapses; true on success. */
template <typename Predicate>
bool
waitFor(Predicate predicate, double timeout_seconds)
{
    const auto deadline =
        std::chrono::steady_clock::now()
        + std::chrono::duration<double>(timeout_seconds);
    while (!predicate()) {
        if (std::chrono::steady_clock::now() > deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return true;
}

firmware::DeviceConfig
chaosConfig()
{
    firmware::DeviceConfig config{};
    config[0].inUse = true;
    config[0].name = "12V-10A";
    config[0].vref = 1.65;
    config[0].slope = 0.11;
    config[1].inUse = true;
    config[1].slope = 0.09;
    return config;
}

/**
 * The soak proper. Exact-accounting invariant under test: every
 * record the server ever published is either received by the client
 * or covered by a gap event — records in flight when a fault kills a
 * connection must never vanish silently.
 */
int
runChaos(bool long_mode)
{
    // Scaled so the short mode fits a PR-gate ctest slot and the
    // long mode soaks through many more fault cycles.
    const double publish_seconds = long_mode ? 20.0 : 2.0;
    const double rate = long_mode ? 5000.0 : 3000.0;

    const std::string socket_path =
        "/tmp/ps3chaos_" + std::to_string(::getpid()) + ".sock";
    const std::string dump_path =
        "ps3chaos_" + std::to_string(::getpid()) + ".ps3b";

    net::Ps3Server::Options server_options;
    server_options.heartbeatInterval = 0.05;
    server_options.writeTimeout = 1.0;
    net::Ps3Server server(chaosConfig(), "PS3-chaos-1.0",
                          server_options);
    const auto endpoint =
        server.listen(transport::Endpoint::parse("unix://"
                                                 + socket_path));

    // Fault storm: each (re)connection gets the next fault kind in
    // the cycle. The very first fault arms only after the handshake
    // and first heartbeat have had ample time, so the client can lock
    // its sequence baseline before anything breaks. Cleared for the
    // final catch-up phase.
    std::atomic<bool> chaos_active{true};
    std::atomic<std::size_t> connections{0};
    auto factory = [&](const transport::Endpoint &target,
                       double timeout)
        -> std::unique_ptr<transport::StreamSocket> {
        auto socket = transport::SocketDevice::connect(target, timeout);
        if (!chaos_active.load(std::memory_order_acquire))
            return socket;
        const std::size_t attempt =
            connections.fetch_add(1, std::memory_order_relaxed);
        transport::Fault fault;
        switch (attempt % 4) {
          case 0:
            fault.kind = transport::Fault::Kind::Reset;
            fault.afterSeconds = attempt == 0 ? 0.5 : 0.10;
            fault.afterBytes = 256;
            break;
          case 1:
            fault.kind = transport::Fault::Kind::TruncateRead;
            fault.afterSeconds = 0.08;
            fault.afterBytes = 512;
            fault.truncateBytes = 96;
            break;
          case 2:
            fault.kind = transport::Fault::Kind::ReadStall;
            fault.afterSeconds = 0.10;
            fault.stallSeconds = 0.8; // > client idleTimeout
            break;
          default:
            fault.kind = transport::Fault::Kind::PartialWrite;
            fault.afterSeconds = 0.05;
            break;
        }
        return std::make_unique<transport::FaultySocket>(
            std::move(socket), std::vector<transport::Fault>{fault});
    };

    net::NetPowerSensor::Options client_options;
    client_options.socketFactory = factory;
    client_options.idleTimeout = 0.3; // fired by the 0.8 s stalls
    client_options.maxReconnectAttempts = 50;
    client_options.reconnectInitialBackoff = 0.01;
    client_options.reconnectMaxBackoff = 0.05;
    net::NetPowerSensor client(endpoint, client_options);

    // Live cap loop across the faulty link: the published records
    // carry a governed CPU model's power, and a coordinator fed by
    // the client's samples throttles it towards the budget — so the
    // controller sees exactly the gaps and replays the storm causes.
    dut::CpuDutModel cap_cpu(dut::CpuSpec::server16Core());
    cap_cpu.setProgram({{0.0, 1e9, cap_cpu.spec().cores, 1.0}});
    dut::DvfsGovernor cap_gov(
        "chaos-cpu", dut::makeLadder(3600.0, 1.05, 1200.0, 0.75, 16),
        [&cap_cpu](double s) { cap_cpu.setPowerScale(s); });
    energy::CapPolicy cap_policy;
    cap_policy.budgetWatts = 60.0;
    energy::PowerCapCoordinator cap(cap_policy);
    cap.addMember("chaos-cpu", cap_gov);
    const auto cap_token = client.addSampleListener(
        [&cap](const host::Sample &sample) {
            cap.observe(0, sample.time, sample.totalPower());
        });

    // Lock the sequence baseline: the first seq a client ever hears
    // is taken as the stream start, so an initial heartbeat must land
    // before any record is published for the accounting to be exact
    // (docs/PROTOCOL.md).
    if (!waitFor([&] { return client.heartbeatsReceived() >= 1; },
                 10.0)) {
        std::fprintf(stderr,
                     "pschaos: no initial heartbeat within 10 s\n");
        return kChaosExitHung;
    }
    client.dump(dump_path); // exercise the gap-annotated dump path

    // Publish phase: paced records through the storm, with periodic
    // upstream marker requests so the write path faults too.
    const auto total = static_cast<std::uint64_t>(
        publish_seconds * rate);
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < total; ++i) {
        host::DumpRecord record{};
        record.time = static_cast<double>(i) / rate;
        record.presentMask = 0x1;
        record.voltage[0] = 12.0;
        record.current[0] = cap_cpu.truePower(record.time) / 12.0;
        server.publish(record);
        if (i % 512 == 0)
            client.mark('c'); // fire-and-forget; may hit a fault
        const auto next =
            start + std::chrono::duration<double>(
                        static_cast<double>(i + 1) / rate);
        std::this_thread::sleep_until(next);
    }

    // Catch-up phase: stop injecting faults, let the client reconnect
    // cleanly and hear a heartbeat carrying the end-of-stream seq, so
    // any trailing hole becomes a gap event.
    chaos_active.store(false, std::memory_order_release);
    const bool settled = waitFor(
        [&] {
            return client.recordsReceived() + client.gapRecords()
                   >= total;
        },
        long_mode ? 30.0 : 15.0);

    server.stop();
    const bool gone =
        waitFor([&] { return client.deviceGone(); }, 10.0);
    client.removeSampleListener(cap_token);

    const std::uint64_t received = client.recordsReceived();
    const std::uint64_t gapped = client.gapRecords();
    std::printf("pschaos: published %llu  received %llu  "
                "gap-covered %llu  gaps %llu  reconnects %llu  "
                "client-heartbeats %llu\n",
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(received),
                static_cast<unsigned long long>(gapped),
                static_cast<unsigned long long>(client.gapEvents()),
                static_cast<unsigned long long>(client.reconnects()),
                static_cast<unsigned long long>(
                    client.heartbeatsReceived()));
    std::printf("pschaos: server heartbeats %llu  write-timeouts %llu"
                "  records-dropped %llu  subscribers-dropped %llu\n",
                static_cast<unsigned long long>(
                    server.heartbeatsSent()),
                static_cast<unsigned long long>(
                    server.writeTimeouts()),
                static_cast<unsigned long long>(
                    server.recordsDropped()),
                static_cast<unsigned long long>(
                    server.subscribersDropped()));

    const std::uint64_t gap_events = client.gapEvents();
    const std::uint64_t reconnects = client.reconnects();
    client.dump(""); // flush + close before reading it back

    int rc = 0;
    if (!settled || !gone) {
        std::fprintf(stderr,
                     "pschaos: FAIL stream never settled "
                     "(settled=%d deviceGone=%d)\n",
                     settled ? 1 : 0, gone ? 1 : 0);
        rc = kChaosExitHung;
    } else if (received + gapped != total) {
        std::fprintf(stderr,
                     "pschaos: FAIL %lld record(s) unaccounted for\n",
                     static_cast<long long>(
                         static_cast<std::int64_t>(total)
                         - static_cast<std::int64_t>(received
                                                     + gapped)));
        rc = kChaosExitLostRecords;
    } else if (reconnects == 0) {
        std::fprintf(stderr,
                     "pschaos: FAIL chaos was ineffective "
                     "(0 reconnects)\n");
        rc = kChaosExitNoChaos;
    }

    // The dump must carry the same gaps the listeners saw: one 'G'
    // record per event, record counts summing to gapRecords().
    if (rc == 0) {
        const auto dump = host::DumpFile::load(dump_path);
        std::uint64_t dump_gap_records = 0;
        for (const auto &gap : dump.gaps())
            dump_gap_records += gap.records;
        if (dump.gaps().size() != gap_events
            || dump_gap_records != gapped) {
            std::fprintf(stderr,
                         "pschaos: FAIL dump gap mismatch "
                         "(%zu 'G' records covering %llu vs %llu "
                         "events covering %llu)\n",
                         dump.gaps().size(),
                         static_cast<unsigned long long>(
                             dump_gap_records),
                         static_cast<unsigned long long>(gap_events),
                         static_cast<unsigned long long>(gapped));
            rc = kChaosExitLostRecords;
        }
    }
    // Graceful degradation of the cap loop across the storm: the
    // controller must have engaged (the 118 W plant sits far over
    // the 60 W budget), converged, and settled without hunting —
    // reconnect gaps pause the feed but must not re-excite it.
    const auto cap_status = cap.status();
    std::printf("pschaos: cap group %.1f W (budget %.1f), %llu down "
                "/ %llu up, converged in %.3f s\n",
                cap_status.filteredWatts, cap_status.budgetWatts,
                static_cast<unsigned long long>(cap_status.stepDowns),
                static_cast<unsigned long long>(cap_status.stepUps),
                cap_status.secondsToConverge);
    if (rc == 0) {
        const std::uint64_t actuations =
            cap_status.stepDowns + cap_status.stepUps;
        const std::uint64_t oscillation_bound =
            3ull * cap_gov.levelCount();
        if (cap_status.stepDowns == 0
            || cap_status.secondsToConverge < 0.0) {
            std::fprintf(stderr,
                         "pschaos: FAIL cap loop never engaged\n");
            rc = kCapExitNoConverge;
        } else if (actuations > oscillation_bound) {
            std::fprintf(stderr,
                         "pschaos: FAIL cap loop oscillated "
                         "(%llu actuations > %llu)\n",
                         static_cast<unsigned long long>(actuations),
                         static_cast<unsigned long long>(
                             oscillation_bound));
            rc = kCapExitUnstable;
        }
    }
    if (rc == 0)
        std::printf("pschaos: PASS — every record accounted for "
                    "across %llu reconnect(s)\n",
                    static_cast<unsigned long long>(reconnects));
    std::remove(dump_path.c_str());
    return rc;
}

/**
 * The closed-loop capping scenario (--cap): three governed CPU
 * models streamed at 20 kHz through a real FleetServer, a
 * FleetCapLoop subscriber driving the coordinator. Asserts
 * convergence, bounded overshoot after convergence, and feedback
 * latency — all in stream (device) time.
 */
int
runCap()
{
    const double rate = 20000.0;
    const double budget = 220.0;
    const double run_seconds = 2.5;

    dut::CpuDutModel cpus[3] = {
        dut::CpuDutModel(dut::CpuSpec::server16Core()),
        dut::CpuDutModel(dut::CpuSpec::server16Core()),
        dut::CpuDutModel(dut::CpuSpec::server16Core()),
    };
    std::vector<std::unique_ptr<dut::DvfsGovernor>> governors;
    for (auto &cpu : cpus) {
        cpu.setProgram({{0.0, 1e9, cpu.spec().cores, 1.0}});
        governors.push_back(std::make_unique<dut::DvfsGovernor>(
            "cap-cpu", dut::makeLadder(3600.0, 1.05, 1200.0, 0.75, 16),
            [&cpu](double s) { cpu.setPowerScale(s); }));
    }
    const double uncapped = 3.0 * cpus[0].truePower(1.0);

    net::SensorRegistry registry;
    const firmware::DeviceConfig config{};
    std::vector<energy::GovernedMember> members;
    for (unsigned i = 0; i < 3; ++i)
        members.push_back(
            {registry.addSimulated("cap-" + std::to_string(i),
                                   config, "sim-cap", rate, 1u << 12),
             &cpus[i], 12.0});

    net::FleetServer server(registry);
    const std::string socket_path =
        "/tmp/ps3cap_" + std::to_string(::getpid()) + ".sock";
    const auto bound = server.listen(
        transport::Endpoint::parse("unix://" + socket_path));
    energy::GovernedFleet fleet(registry, members, rate);

    energy::CapPolicy policy;
    policy.budgetWatts = budget;
    energy::PowerCapCoordinator coordinator(policy);
    for (unsigned i = 0; i < 3; ++i)
        coordinator.addMember("cap-" + std::to_string(i),
                              *governors[i]);
    energy::FleetCapLoop loop(
        bound, {members[0].sensorId, members[1].sensorId,
                members[2].sensorId},
        coordinator);

    std::printf("pscap-test: uncapped %.1f W, budget %.1f W, "
                "%.0f Hz per sensor\n",
                uncapped, budget, rate);
    std::fflush(stdout);

    // Sample the rollup; once converged, watch for re-excursions.
    const auto start = std::chrono::steady_clock::now();
    double post_max = 0.0;
    bool seen_converged = false;
    for (;;) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        const double elapsed = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now()
                                   - start)
                                   .count();
        if (elapsed >= run_seconds)
            break;
        const auto s = coordinator.status();
        if (s.secondsToConverge >= 0.0) {
            seen_converged = true;
            post_max = std::max(post_max, s.filteredWatts);
        }
    }

    loop.stop();
    fleet.stop();
    registry.stopAll();
    server.stop();
    std::remove(socket_path.c_str());

    const auto status = coordinator.status();
    std::printf("pscap-test: group %.1f W, converged in %.3f s, "
                "first step-down after %.3f s, post-convergence max "
                "%.1f W, %llu down / %llu up, %llu records, "
                "%llu gap(s)\n",
                status.filteredWatts, status.secondsToConverge,
                status.firstStepDownAfter, post_max,
                static_cast<unsigned long long>(status.stepDowns),
                static_cast<unsigned long long>(status.stepUps),
                static_cast<unsigned long long>(loop.recordsSeen()),
                static_cast<unsigned long long>(loop.gapRecords()));
    std::fflush(stdout);

    if (!seen_converged || status.secondsToConverge < 0.0
        || status.secondsToConverge > 1.5) {
        std::fprintf(stderr,
                     "pscap-test: FAIL no convergence within 1.5 s "
                     "of stream time\n");
        return kCapExitNoConverge;
    }
    // Feedback latency: the EWMA (tau 20 ms) plus one control
    // interval should actuate well inside 0.3 stream seconds.
    if (status.firstStepDownAfter < 0.0
        || status.firstStepDownAfter > 0.3) {
        std::fprintf(stderr,
                     "pscap-test: FAIL first actuation after %.3f s "
                     "(bound 0.3 s)\n",
                     status.firstStepDownAfter);
        return kCapExitSlowFeedback;
    }
    // Bounded overshoot: after convergence the rollup must never
    // leave the +5% band again (no hunting), and the loop must not
    // have actuated endlessly to stay there.
    if (post_max > budget * 1.05
        || status.stepDowns + status.stepUps
               > 3ull * governors[0]->levelCount() * 3ull) {
        std::fprintf(stderr,
                     "pscap-test: FAIL unstable (post-convergence "
                     "max %.1f W, %llu actuations)\n",
                     post_max,
                     static_cast<unsigned long long>(
                         status.stepDowns + status.stepUps));
        return kCapExitUnstable;
    }
    std::printf("pscap-test: PASS\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
try {
    using namespace ps3;

    // The chaos soak is self-contained (it builds its own server and
    // client); intercept it before openTool() opens a rig.
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--chaos") == 0
            || std::strcmp(argv[i], "--chaos=short") == 0)
            return runChaos(false);
        if (std::strcmp(argv[i], "--chaos=long") == 0)
            return runChaos(true);
        if (std::strcmp(argv[i], "--cap") == 0)
            return runCap();
    }

    auto context = tools::openTool(
        argc, argv, "pstest",
        "  --samples N  collect N samples and print statistics\n"
        "  --chaos[=short|long]  run the network chaos soak\n"
        "  --cap        run the closed-loop power-cap scenario\n");
    auto &sensor = *context.sensor;

    std::size_t stat_samples = 0;
    for (std::size_t i = 0; i < context.args.size(); ++i) {
        if (context.args[i] == "--samples"
            && i + 1 < context.args.size()) {
            stat_samples = std::strtoull(
                context.args[++i].c_str(), nullptr, 10);
        }
    }

    std::printf("%-12s %-12s %-12s\n", "interval_s", "avg_W",
                "energy_J");
    // Doubling intervals: 1/64 s up to 2 s of device time.
    for (double interval = 1.0 / 64; interval <= 2.0; interval *= 2) {
        const auto first = sensor.read();
        const auto sets = static_cast<std::uint64_t>(
            interval * firmware::kSampleRateHz);
        if (!sensor.waitForSamples(sets)) {
            std::fprintf(stderr, "pstest: device disappeared\n");
            return 1;
        }
        const auto second = sensor.read();
        std::printf("%-12.5f %-12.4f %-12.5f\n",
                    host::seconds(first, second),
                    host::Watts(first, second),
                    host::Joules(first, second));
    }

    if (stat_samples > 0) {
        RunningStatistics power;
        const auto token = sensor.addSampleListener(
            [&](const host::Sample &sample) {
                power.add(sample.totalPower());
            });
        sensor.waitForSamples(stat_samples);
        sensor.removeSampleListener(token);
        std::printf("\n%zu samples: min %.4f W  max %.4f W  "
                    "mean %.4f W  std %.4f W\n",
                    power.count(), power.min(), power.max(),
                    power.mean(), power.stddev());
    }
    std::fflush(stdout);
    tools::printStats(context);
    return 0;
} catch (const std::exception &e) {
    std::fprintf(stderr, "pstest: %s\n", e.what());
    return 1;
}
