/**
 * @file
 * pscal — guided one-time calibration (paper Sec. III-D).
 *
 * Run with the sensor modules unloaded (no current) and the supply at
 * a known voltage:
 *
 *   pscal --pair N --volts V [--samples N] [--apply]
 *
 * Averages 128 k samples (default), reports the Hall offset and the
 * voltage-chain gain error, and with --apply persists the corrections
 * to the device EEPROM.
 */

#include <cstdio>
#include <cstdlib>

#include "host/calibrator.hpp"
#include "common/errors.hpp"
#include "tool_common.hpp"

int
main(int argc, char **argv)
try {
    using namespace ps3;

    auto context = tools::openTool(
        argc, argv, "pscal",
        "  --pair N --volts V [--samples N] [--apply]\n"
        "  calibrate an unloaded sensor pair against a known supply\n");
    auto &sensor = *context.sensor;

    int pair = -1;
    double volts = 0.0;
    std::size_t samples = host::kCalibrationSamples;
    bool apply = false;
    const auto &args = context.args;
    for (std::size_t i = 0; i < args.size(); ++i) {
        auto next = [&]() -> std::string {
            if (i + 1 >= args.size())
                throw UsageError(args[i] + " needs an argument");
            return args[++i];
        };
        if (args[i] == "--pair")
            pair = std::atoi(next().c_str());
        else if (args[i] == "--volts")
            volts = std::stod(next());
        else if (args[i] == "--samples")
            samples = std::strtoull(next().c_str(), nullptr, 10);
        else if (args[i] == "--apply")
            apply = true;
        else
            throw UsageError("unknown option: " + args[i]);
    }
    if (pair < 0 || volts <= 0.0) {
        std::fprintf(stderr,
                     "pscal: --pair and --volts are required\n");
        return 2;
    }

    std::printf("calibrating pair %d against %.3f V over %zu "
                "samples...\n",
                pair, volts, samples);
    host::Calibrator calibrator(sensor);
    const auto result = calibrator.calibratePair(
        static_cast<unsigned>(pair), volts, samples);

    std::printf("  current offset before: %+.4f A\n",
                result.offsetAmpsBefore);
    std::printf("  voltage gain error:    %+.3f %%\n",
                result.voltageGainErrorBefore * 100.0);
    std::printf("  new vref:              %.5f V\n", result.newVref);
    std::printf("  new voltage gain:      %.5f V/V\n",
                result.newVoltageGain);

    if (apply) {
        calibrator.apply();
        std::printf("corrections written to device EEPROM\n");
    } else {
        std::printf("dry run (use --apply to persist)\n");
    }
    return 0;
} catch (const std::exception &e) {
    std::fprintf(stderr, "pscal: %s\n", e.what());
    return 1;
}
