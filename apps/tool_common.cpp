#include "tool_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>

#include "analog/sensor_module_spec.hpp"
#include "common/errors.hpp"
#include "common/logging.hpp"
#include "dut/gpu_model.hpp"
#include "firmware/protocol.hpp"
#include "net/net_power_sensor.hpp"

namespace ps3::tools {

namespace {

/** Split "a:b:c" into parts. */
std::vector<std::string>
splitSpec(const std::string &spec, char sep = ':')
{
    std::vector<std::string> parts;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t next = spec.find(sep, pos);
        if (next == std::string::npos) {
            parts.push_back(spec.substr(pos));
            break;
        }
        parts.push_back(spec.substr(pos, next - pos));
        pos = next + 1;
    }
    return parts;
}

/** Parse key=value rig parameters. */
std::map<std::string, std::string>
specParams(const std::vector<std::string> &parts)
{
    std::map<std::string, std::string> params;
    for (std::size_t i = 1; i < parts.size(); ++i) {
        const auto eq = parts[i].find('=');
        if (eq == std::string::npos)
            throw UsageError("bad rig parameter: " + parts[i]);
        params[parts[i].substr(0, eq)] = parts[i].substr(eq + 1);
    }
    return params;
}

host::SimulatedRig
buildRig(const std::string &spec)
{
    const auto parts = splitSpec(spec);
    const auto params = specParams(parts);
    const std::string kind = parts.empty() ? "bench" : parts[0];

    auto get = [&](const std::string &key,
                   const std::string &fallback) {
        const auto it = params.find(key);
        return it == params.end() ? fallback : it->second;
    };

    if (kind == "bench") {
        const auto module =
            analog::modules::byName(get("module", "12V-10A"));
        const double volts = std::stod(get("volts", "12"));
        const double amps = std::stod(get("amps", "8"));
        return host::rigs::labBench(module, volts, amps);
    }
    if (kind == "gpu") {
        const std::string card = get("card", "rtx4000ada");
        const auto gpu_spec = card == "w7700"
                                  ? dut::GpuSpec::w7700()
                                  : dut::GpuSpec::rtx4000Ada();
        return host::rigs::gpuRig(gpu_spec);
    }
    if (kind == "soc")
        return host::rigs::socRig(dut::GpuSpec::jetsonAgxOrinModule());
    throw UsageError("unknown rig kind: " + kind);
}

/** Bytes per frame set given the enabled channel count. */
double
linkBytesPerSecond(const firmware::DeviceConfig &config)
{
    unsigned channels = 0;
    for (const auto &record : config) {
        if (record.inUse)
            ++channels;
    }
    const double bytes_per_set = 2.0 * (channels + 1);
    return bytes_per_set * firmware::kSampleRateHz;
}

} // namespace

ToolContext
openTool(int argc, char **argv, const std::string &tool_name,
         const std::string &tool_usage)
{
    std::string device_path;
    std::string connect_uri;
    std::string sim_spec = "bench";
    auto tier = host::Tier::Raw;
    bool fast = false;

    ToolContext context;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                throw UsageError(arg + " needs an argument");
            return argv[++i];
        };
        if (arg == "-d" || arg == "--device") {
            device_path = next();
        } else if (arg == "--connect") {
            connect_uri = next();
        } else if (arg == "--sim") {
            sim_spec = next();
        } else if (arg == "--tier") {
            const std::string name = next();
            const auto parsed = host::tierFromString(name);
            if (!parsed) {
                throw UsageError("--tier must be raw, 1kHz, 10Hz or "
                                 "1Hz (got " + name + ")");
            }
            tier = *parsed;
        } else if (arg == "--fast") {
            fast = true;
        } else if (arg == "--stats") {
            context.statsFormat = obs::Format::Table;
        } else if (arg.rfind("--stats=", 0) == 0) {
            const auto format = obs::parseFormat(arg.substr(8));
            if (!format) {
                throw UsageError(
                    "--stats format must be table, csv or prom");
            }
            context.statsFormat = format;
        } else if (arg == "--verbose") {
            Log::setLevel(LogLevel::Debug);
        } else if (arg == "-h" || arg == "--help") {
            std::cout << "usage: " << tool_name
                      << " [-d DEVICE | --connect URI | --sim SPEC] "
                         "[--tier T] [--fast] "
                         "[--stats[=table|csv|prom]] [--verbose]\n"
                      << tool_usage
                      << "\nrig specs: bench[:module=..][:volts=..]"
                         "[:amps=..] | gpu[:card=..] | soc\n"
                      << "--connect streams from a ps3d daemon "
                         "(tcp://host:port or unix:///path)\n"
                      << "--tier raw|1kHz|10Hz|1Hz subscribes to a "
                         "reduced-rate stream (with --connect, "
                         "PS3N v1.2; docs/HISTORY.md)\n"
                      << "--stats prints an end-of-run metrics "
                         "snapshot (docs/OBSERVABILITY.md)\n";
            std::exit(0);
        } else {
            context.args.push_back(arg);
        }
    }

    if (tier != host::Tier::Raw && connect_uri.empty()) {
        throw UsageError(
            "--tier needs --connect: local sensors always read the "
            "raw 20 kHz stream (query reduced tiers offline with "
            "psquery)");
    }
    if (!connect_uri.empty()) {
        // Normalised connect failure: every tool prints the same
        // one-line actionable message and exits with the distinct
        // connect-failed code instead of surfacing raw exception
        // text through its generic handler.
        try {
            net::NetPowerSensor::Options options;
            options.tier = tier;
            context.sensor = std::make_unique<net::NetPowerSensor>(
                connect_uri, options);
        } catch (const UsageError &error) {
            std::fprintf(stderr,
                         "%s: bad --connect URI: %s (expected "
                         "tcp://host:port or unix:///path)\n",
                         tool_name.c_str(), error.what());
            std::exit(kExitConnectFailed);
        } catch (const DeviceError &error) {
            std::fprintf(stderr,
                         "%s: cannot connect to %s: %s — is a ps3d "
                         "daemon serving that endpoint? (start one "
                         "with: ps3d --listen %s)\n",
                         tool_name.c_str(), connect_uri.c_str(),
                         error.what(), connect_uri.c_str());
            std::exit(kExitConnectFailed);
        }
        return context;
    }
    if (!device_path.empty()) {
        context.sensor =
            std::make_unique<host::PowerSensor>(device_path);
        return context;
    }

    context.rig = buildRig(sim_spec);
    context.sensor = context.rig->connect();
    if (!fast) {
        context.rig->port->setThrottle(
            linkBytesPerSecond(context.sensor->config()));
    }
    return context;
}

void
printStats(const ToolContext &context)
{
    if (!context.statsFormat)
        return;
    const auto snapshot = obs::Registry::global().snapshot();
    if (*context.statsFormat == obs::Format::Table)
        std::cout << "\n--- observability snapshot ---\n";
    obs::write(std::cout, snapshot, *context.statsFormat);
}

void
printPairConfig(const firmware::DeviceConfig &config, unsigned pair)
{
    const auto &current = config[pair * 2];
    const auto &voltage = config[pair * 2 + 1];
    if (!current.inUse && !voltage.inUse) {
        std::printf("pair %u: (empty)\n", pair);
        return;
    }
    std::printf("pair %u: %-16s", pair, current.name.c_str());
    std::printf("  vref %.4f V  sensitivity %.4f V/A", current.vref,
                current.slope);
    std::printf("  gain %.4f V/V  %s\n", voltage.slope,
                current.inUse && voltage.inUse ? "enabled"
                                               : "partially enabled");
}

} // namespace ps3::tools
