/**
 * @file
 * psdump — analyse a continuous-mode dump file offline.
 *
 *   psdump <file> [--stats] [--markers] [--between A B]
 *          [--decimate N] [--csv out.csv] [--stats=FORMAT]
 *
 * <file> may be a text dump or a binary "*.ps3b" dump (format v2);
 * the format is auto-detected by content, so every option below
 * works identically on both (see docs/PERFORMANCE.md for the binary
 * layout).
 *
 * --stats          power statistics over the whole file (default)
 * --stats=FORMAT   ALSO print an observability snapshot (metrics of
 *                  the dump parser) in table/csv/prom format; see
 *                  docs/OBSERVABILITY.md
 * --markers        list markers with timestamps
 * --regions        per-region energy attribution: fold the dump
 *                  through energy::EnergyAccountant (uppercase
 *                  markers begin regions, lowercase end them — see
 *                  docs/PROTOCOL.md) and print the region table
 * --between A B    energy/average power between markers A and B
 * --decimate N     with --csv: keep every Nth sample
 * --csv FILE       export time,total_W series as CSV
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include <iostream>
#include <optional>

#include "common/csv_writer.hpp"
#include "common/errors.hpp"
#include "common/statistics.hpp"
#include "energy/accountant.hpp"
#include "host/dump_reader.hpp"
#include "obs/exposition.hpp"

int
main(int argc, char **argv)
try {
    using namespace ps3;

    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: psdump <file> [--stats] [--markers] "
                     "[--regions] [--between A B] [--decimate N] "
                     "[--csv out]\n");
        return 2;
    }
    const std::string path = argv[1];

    bool stats = false, markers = false, regions = false;
    char between_a = '\0', between_b = '\0';
    std::size_t decimate = 1;
    std::string csv_path;
    std::optional<obs::Format> obs_format;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                throw UsageError(arg + " needs an argument");
            return argv[++i];
        };
        if (arg == "--stats") {
            stats = true;
        } else if (arg.rfind("--stats=", 0) == 0) {
            obs_format = obs::parseFormat(arg.substr(8));
            if (!obs_format) {
                throw UsageError(
                    "--stats format must be table, csv or prom");
            }
        } else if (arg == "--markers") {
            markers = true;
        } else if (arg == "--regions") {
            regions = true;
        } else if (arg == "--between") {
            between_a = next()[0];
            between_b = next()[0];
        } else if (arg == "--decimate") {
            decimate = std::strtoull(next().c_str(), nullptr, 10);
            if (decimate == 0)
                throw UsageError("--decimate must be positive");
        } else if (arg == "--csv") {
            csv_path = next();
        } else {
            throw UsageError("unknown option: " + arg);
        }
    }
    if (!markers && !regions && between_a == '\0'
        && csv_path.empty())
        stats = true;

    const auto file = host::DumpFile::load(path);
    std::printf("%s: %zu samples, %zu markers, %.0f Hz\n",
                path.c_str(), file.samples().size(),
                file.markers().size(), file.sampleRateHz());

    if (stats && !file.samples().empty()) {
        RunningStatistics power;
        for (const auto &sample : file.samples())
            power.add(sample.totalPower);
        const double span = file.samples().back().time
                            - file.samples().front().time;
        std::printf("power: mean %.4f W  min %.4f  max %.4f  "
                    "std %.4f\n",
                    power.mean(), power.min(), power.max(),
                    power.stddev());
        std::printf("span: %.6f s, energy %.4f J\n", span,
                    file.energy(file.samples().front().time,
                                file.samples().back().time));
    }

    if (markers) {
        for (const auto &marker : file.markers()) {
            std::printf("marker '%c' at %.6f s\n", marker.marker,
                        marker.time);
        }
    }

    if (regions) {
        energy::EnergyAccountant accountant;
        accountant.replay(file);
        const auto table = accountant.snapshot();
        if (table.empty()) {
            std::printf("no regions (no 'A'..'Z'/'a'..'z' markers)\n");
        } else {
            std::fputs(energy::formatRegionTable(table).c_str(),
                       stdout);
        }
        if (accountant.strayEndMarkers() > 0)
            std::printf("stray end markers: %llu\n",
                        static_cast<unsigned long long>(
                            accountant.strayEndMarkers()));
    }

    if (between_a != '\0') {
        const double joules =
            file.energyBetweenMarkers(between_a, between_b);
        std::printf("energy between '%c' and '%c': %.4f J\n",
                    between_a, between_b, joules);
    }

    if (!csv_path.empty()) {
        std::ofstream out(csv_path);
        if (!out)
            throw UsageError("cannot open " + csv_path);
        CsvWriter csv(out);
        csv.header({"time_s", "total_W"});
        const auto &samples = file.samples();
        for (std::size_t i = 0; i < samples.size(); i += decimate)
            csv.row({samples[i].time, samples[i].totalPower});
        std::printf("wrote %zu rows to %s\n", csv.rowCount(),
                    csv_path.c_str());
    }

    if (obs_format) {
        std::fflush(stdout);
        if (*obs_format == obs::Format::Table)
            std::cout << "\n--- observability snapshot ---\n";
        obs::write(std::cout, obs::Registry::global().snapshot(),
                   *obs_format);
    }
    return 0;
} catch (const std::exception &e) {
    std::fprintf(stderr, "psdump: %s\n", e.what());
    return 1;
}
