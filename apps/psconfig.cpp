/**
 * @file
 * psconfig — read or write the sensor configuration values stored in
 * the device EEPROM, and optionally reboot the device (paper
 * Sec. III-C). After installing firmware, this tool configures the
 * device.
 *
 * Tool options:
 *   (none)                 print the current configuration
 *   --pair N               select a sensor pair for edits
 *   --name NAME            set the pair's sensor name
 *   --vref V               set the current channel reference voltage
 *   --sensitivity S        set the current channel slope (V/A)
 *   --gain G               set the voltage channel gain (V/V)
 *   --enable / --disable   toggle the pair
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/errors.hpp"
#include "tool_common.hpp"

int
main(int argc, char **argv)
try {
    using namespace ps3;

    auto context = tools::openTool(
        argc, argv, "psconfig",
        "  [--pair N [--name S] [--vref V] [--sensitivity S]\n"
        "   [--gain G] [--enable|--disable]]\n");
    auto &sensor = *context.sensor;

    auto config = sensor.config();

    int pair = -1;
    bool dirty = false;
    const auto &args = context.args;
    for (std::size_t i = 0; i < args.size(); ++i) {
        auto next = [&]() -> std::string {
            if (i + 1 >= args.size())
                throw UsageError(args[i] + " needs an argument");
            return args[++i];
        };
        auto requirePair = [&]() {
            if (pair < 0 || pair >= static_cast<int>(host::kMaxPairs))
                throw UsageError("--pair must be set first");
        };
        if (args[i] == "--pair") {
            pair = std::atoi(next().c_str());
        } else if (args[i] == "--name") {
            requirePair();
            const auto name = next();
            config[pair * 2].name = name;
            config[pair * 2 + 1].name = name;
            dirty = true;
        } else if (args[i] == "--vref") {
            requirePair();
            config[pair * 2].vref = std::stof(next());
            dirty = true;
        } else if (args[i] == "--sensitivity") {
            requirePair();
            config[pair * 2].slope = std::stof(next());
            dirty = true;
        } else if (args[i] == "--gain") {
            requirePair();
            config[pair * 2 + 1].slope = std::stof(next());
            dirty = true;
        } else if (args[i] == "--enable" || args[i] == "--disable") {
            requirePair();
            const bool enable = args[i] == "--enable";
            config[pair * 2].inUse = enable;
            config[pair * 2 + 1].inUse = enable;
            dirty = true;
        } else {
            throw UsageError("unknown option: " + args[i]);
        }
    }

    if (dirty) {
        sensor.writeConfig(config);
        std::printf("configuration written\n");
    }
    for (unsigned p = 0; p < host::kMaxPairs; ++p)
        tools::printPairConfig(sensor.config(), p);
    return 0;
} catch (const std::exception &e) {
    std::fprintf(stderr, "psconfig: %s\n", e.what());
    return 1;
}
